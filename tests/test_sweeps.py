"""Tests of the parameter-sweep utilities."""

import pytest

from repro.analysis.sweeps import Series, crossover_between, render_series, sweep
from repro.errors import ValidationError


class TestSeries:
    def test_sweep_evaluates(self):
        s = sweep([1, 2, 3], lambda x: x * x, label="sq")
        assert s.ys == [1.0, 4.0, 9.0]

    def test_fit_exponent_quadratic(self):
        s = sweep([2, 4, 8, 16], lambda x: 3 * x**2)
        assert s.fit_exponent() == pytest.approx(2.0)

    def test_fit_exponent_inverse_sqrt(self):
        s = sweep([1, 4, 16, 64], lambda x: 10 / x**0.5)
        assert s.fit_exponent() == pytest.approx(-0.5)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValidationError):
            Series([1], [1]).fit_exponent()

    def test_fit_needs_positive_data(self):
        with pytest.raises(ValidationError):
            Series([1, 2], [0, 1]).fit_exponent()

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            Series([1, 2], [1])

    def test_ratio_to(self):
        a = sweep([1, 2], lambda x: 10 * x, label="a")
        b = sweep([1, 2], lambda x: x, label="b")
        r = a.ratio_to(b)
        assert r.ys == [10.0, 10.0]
        assert r.label == "a/b"

    def test_ratio_requires_same_xs(self):
        with pytest.raises(ValidationError):
            sweep([1, 2], float).ratio_to(sweep([1, 3], float))


class TestCrossover:
    def test_found(self):
        conv = sweep(list(range(1, 10)), lambda k: k * 100.0)
        neuro = sweep(list(range(1, 10)), lambda k: 450.0)
        assert crossover_between(conv, neuro) == 5

    def test_not_found(self):
        a = sweep([1, 2, 3], lambda x: 1.0)
        b = sweep([1, 2, 3], lambda x: 2.0)
        assert crossover_between(a, b) is None

    def test_mismatched_sweeps(self):
        with pytest.raises(ValidationError):
            crossover_between(sweep([1], float), sweep([2], float))


class TestRendering:
    def test_columns_present(self):
        a = sweep([1, 2], lambda x: x, label="conv")
        b = sweep([1, 2], lambda x: 2 * x, label="neuro")
        text = render_series([a, b], x_label="k")
        assert "k" in text and "conv" in text and "neuro" in text
        assert len(text.splitlines()) == 4  # header, rule, 2 rows

    def test_empty(self):
        assert render_series([]) == ""

    def test_mismatched_sweeps(self):
        with pytest.raises(ValidationError):
            render_series([sweep([1], float), sweep([2], float)])
