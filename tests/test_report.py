"""Tests of the Markdown instance report."""

import pytest

from repro.analysis.report import generate_instance_report
from repro.errors import ValidationError
from repro.workloads import gnp_graph


@pytest.fixture(scope="module")
def doc():
    g = gnp_graph(15, 0.3, max_length=5, seed=2, ensure_source_reaches=True)
    return generate_instance_report(g, 0, k=3, registers=4)


class TestReport:
    def test_all_sections_present(self, doc):
        for heading in (
            "## Instance",
            "## Ignoring data movement",
            "## With data movement",
            "## Table-1 side conditions",
            "## Energy estimate",
        ):
            assert heading in doc

    def test_markdown_tables_well_formed(self, doc):
        for line in doc.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_platforms_listed(self, doc):
        for name in ("TrueNorth", "Loihi", "Core i7-9700T"):
            assert name in doc

    def test_winners_reported(self, doc):
        assert "neuromorphic" in doc or "conventional" in doc

    def test_custom_title(self):
        g = gnp_graph(8, 0.4, max_length=3, seed=1)
        doc = generate_instance_report(g, 0, k=2, title="My Study")
        assert doc.startswith("# My Study")

    def test_validation(self):
        g = gnp_graph(8, 0.4, max_length=3, seed=1)
        with pytest.raises(ValidationError):
            generate_instance_report(g, 99)
        with pytest.raises(ValidationError):
            generate_instance_report(g, 0, k=0)


class TestReportCli:
    def test_report_to_file(self, tmp_path):
        from repro.cli import main
        from repro.workloads import gnp_graph, write_edge_list

        gpath = tmp_path / "g.edges"
        write_edge_list(gnp_graph(10, 0.3, max_length=4, seed=3), gpath)
        out = tmp_path / "report.md"
        assert main(["report", str(gpath), "--k", "2", "--out", str(out)]) == 0
        text = out.read_text()
        assert "# Neuromorphic advantage report" in text

    def test_report_to_stdout(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads import gnp_graph, write_edge_list

        gpath = tmp_path / "g.edges"
        write_edge_list(gnp_graph(10, 0.3, max_length=4, seed=3), gpath)
        assert main(["report", str(gpath), "--k", "2"]) == 0
        assert "## Energy estimate" in capsys.readouterr().out
