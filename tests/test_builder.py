"""Tests of the circuit builder: gates, alignment, pipelining."""

import pytest

from repro.circuits import CircuitBuilder, run_circuit
from repro.circuits.runner import run_circuit_waves
from repro.errors import CircuitError


def single_gate_circuit(gate_name, width):
    b = CircuitBuilder()
    ins = b.input_bits("x", width)
    gate = getattr(b, gate_name)
    out = gate(ins)
    b.output_bits("out", [out])
    return b


class TestGates:
    @pytest.mark.parametrize("bits,expect", [(0b000, 0), (0b010, 1), (0b111, 1)])
    def test_or_gate(self, bits, expect):
        b = single_gate_circuit("or_gate", 3)
        assert run_circuit(b, {"x": bits})["out"] == expect

    @pytest.mark.parametrize("bits,expect", [(0b111, 1), (0b110, 0), (0b000, 0)])
    def test_and_gate(self, bits, expect):
        b = single_gate_circuit("and_gate", 3)
        assert run_circuit(b, {"x": bits})["out"] == expect

    @pytest.mark.parametrize("bit,expect", [(0, 1), (1, 0)])
    def test_not_gate(self, bit, expect):
        b = CircuitBuilder()
        (x,) = b.input_bits("x", 1)
        b.output_bits("out", [b.not_gate(x)])
        assert run_circuit(b, {"x": bit})["out"] == expect

    @pytest.mark.parametrize("a,c,expect", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_xor_gate(self, a, c, expect):
        b = CircuitBuilder()
        (xa,) = b.input_bits("a", 1)
        (xb,) = b.input_bits("b", 1)
        b.output_bits("out", [b.xor_gate(xa, xb)])
        assert run_circuit(b, {"a": a, "b": c})["out"] == expect

    @pytest.mark.parametrize("k,i,expect", [(0, 0, 0), (1, 0, 1), (1, 1, 0), (0, 1, 0)])
    def test_and_not_gate(self, k, i, expect):
        b = CircuitBuilder()
        (keep,) = b.input_bits("k", 1)
        (inh,) = b.input_bits("i", 1)
        b.output_bits("out", [b.and_not_gate(keep, inh)])
        assert run_circuit(b, {"k": k, "i": i})["out"] == expect

    def test_gate_requires_inputs(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            b.gate([], 0.5)

    def test_gate_offset_must_leave_delay(self):
        b = CircuitBuilder()
        (x,) = b.input_bits("x", 1)
        g = b.buffer(x)  # offset 1
        with pytest.raises(CircuitError):
            b.gate([(g, 1.0)], 0.5, at_offset=1)


class TestAlignment:
    def test_mixed_depth_inputs_align_automatically(self):
        # AND of a raw input and a double-buffered input still works
        b = CircuitBuilder()
        (x,) = b.input_bits("x", 1)
        (y,) = b.input_bits("y", 1)
        deep = b.buffer(b.buffer(y))
        out = b.and_gate([x, deep])
        b.output_bits("out", [out])
        assert run_circuit(b, {"x": 1, "y": 1})["out"] == 1
        assert run_circuit(b, {"x": 1, "y": 0})["out"] == 0

    def test_align_buffers_only_early_signals(self):
        b = CircuitBuilder()
        (x,) = b.input_bits("x", 1)
        deep = b.buffer(b.buffer(x))
        shallow = b.buffer(x)
        aligned = b.align([deep, shallow])
        assert aligned[0] is deep  # already at the target offset
        assert aligned[0].offset == aligned[1].offset

    def test_depth_reflects_output_offsets(self):
        b = CircuitBuilder()
        (x,) = b.input_bits("x", 1)
        out = b.buffer(b.buffer(b.buffer(x)))
        b.output_bits("out", [out])
        assert b.depth == 3

    def test_duplicate_groups_rejected(self):
        b = CircuitBuilder()
        b.input_bits("x", 1)
        with pytest.raises(CircuitError):
            b.input_bits("x", 2)
        out = b.buffer(b.input_groups["x"][0])
        b.output_bits("o", [out])
        with pytest.raises(CircuitError):
            b.output_bits("o", [out])

    def test_size_counts_placed_neurons(self):
        b = CircuitBuilder()
        ins = b.input_bits("x", 3)
        b.or_gate(ins)
        assert b.size == 4


class TestPipelining:
    def test_consecutive_waves_do_not_interfere(self):
        # 3-bit OR pipeline fed three different waves on consecutive ticks
        b = single_gate_circuit("or_gate", 3)
        waves = [{"x": 0b000}, {"x": 0b010}, {"x": 0b000}, {"x": 0b101}]
        outs = run_circuit_waves(b, waves)
        assert [o["out"] for o in outs] == [0, 1, 0, 1]

    def test_pipelined_xor(self):
        b = CircuitBuilder()
        (xa,) = b.input_bits("a", 1)
        (xb,) = b.input_bits("b", 1)
        b.output_bits("out", [b.xor_gate(xa, xb)])
        waves = [{"a": 1, "b": 1}, {"a": 1, "b": 0}, {"a": 0, "b": 0}, {"a": 0, "b": 1}]
        outs = run_circuit_waves(b, waves)
        assert [o["out"] for o in outs] == [0, 1, 0, 1]

    def test_unknown_input_group_rejected(self):
        b = single_gate_circuit("or_gate", 2)
        with pytest.raises(CircuitError):
            run_circuit(b, {"nope": 1})

    def test_wrong_bit_width_rejected(self):
        b = single_gate_circuit("or_gate", 2)
        with pytest.raises(CircuitError):
            run_circuit(b, {"x": [1, 0, 1]})
