"""Tests of the Section 4.4 Remark: lambda-bit messages on the crossbar."""

import numpy as np
import pytest

from repro.embedding.poly_crossbar import (
    compile_poly_sssp_on_crossbar,
    run_poly_crossbar,
)
from repro.errors import EmbeddingError
from repro.workloads import WeightedDigraph, gnp_graph, path_graph
from tests.conftest import ref_sssp


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, seed):
        g = gnp_graph(4, 0.5, max_length=3, seed=seed, ensure_source_reaches=True)
        r = run_poly_crossbar(compile_poly_sssp_on_crossbar(g, 0))
        assert np.array_equal(r.dist, ref_sssp(g, 0))

    def test_path_graph(self):
        g = path_graph(4, max_length=2, seed=1)
        r = run_poly_crossbar(compile_poly_sssp_on_crossbar(g, 0))
        assert np.array_equal(r.dist, ref_sssp(g, 0))

    def test_unreachable_vertices_silent(self):
        g = WeightedDigraph(3, [(0, 1, 2)])
        r = run_poly_crossbar(compile_poly_sssp_on_crossbar(g, 0))
        assert r.dist.tolist() == [0, 2, -1]

    def test_cycle_graph_first_arrival_wins(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1), (2, 0, 1)])
        r = run_poly_crossbar(compile_poly_sssp_on_crossbar(g, 0))
        assert r.dist.tolist() == [0, 1, 2]

    def test_nontrivial_source(self):
        g = gnp_graph(4, 0.6, max_length=2, seed=9, ensure_source_reaches=True)
        r = run_poly_crossbar(compile_poly_sssp_on_crossbar(g, 2))
        assert np.array_equal(r.dist, ref_sssp(g, 2))


class TestStructure:
    def test_time_value_redundancy_is_checked(self):
        """run_poly_crossbar verifies tick == value * scale * x internally;
        a clean run implies the redundant encodings agreed."""
        g = gnp_graph(4, 0.5, max_length=3, seed=4, ensure_source_reaches=True)
        compiled = compile_poly_sssp_on_crossbar(g, 0)
        r = run_poly_crossbar(compiled)  # raises on disagreement
        assert (r.dist >= -1).all()

    def test_logarithmic_overhead(self):
        """Hop cost x grows like the message width (log nU), not like n."""
        xs = {}
        for U in (2, 2**6):
            g = path_graph(4, max_length=U, seed=0)
            xs[U] = compile_poly_sssp_on_crossbar(g, 0).x
        assert xs[2**6] > xs[2]
        assert xs[2**6] < 8 * xs[2]  # log-factor growth, not polynomial

    def test_neuron_count_n_squared_lambda(self):
        g = gnp_graph(4, 0.5, max_length=3, seed=5)
        compiled = compile_poly_sssp_on_crossbar(g, 0)
        n, lam = g.n, compiled.bits
        # 2n^2 crossbar vertices, O(lambda) neurons each
        assert compiled.net.n_neurons < 2 * n * n * (20 * lam)
        assert compiled.net.n_neurons > 2 * n * n  # strictly more than plain

    def test_source_validation(self):
        g = path_graph(3, seed=0)
        with pytest.raises(EmbeddingError):
            compile_poly_sssp_on_crossbar(g, 5)
