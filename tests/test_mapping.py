"""Tests of core/chip mapping and spike-traffic accounting (Appendix A)."""

import numpy as np
import pytest

from repro.core import Network, simulate
from repro.errors import ValidationError
from repro.hardware import LOIHI, TRUENORTH, PlatformSpec
from repro.hardware.mapping import (
    CoreMapping,
    greedy_locality_mapping,
    mapping_traffic,
    round_robin_mapping,
)

TINY = PlatformSpec(
    name="tiny",
    organization="test",
    design="ASIC",
    process_nm=1,
    clock_hz=None,
    neurons_per_core=4,
    cores_per_chip=2,
)


def chain_network(n):
    net = Network()
    ids = [net.add_neuron(tau=1.0) for _ in range(n)]
    for i in range(n - 1):
        net.add_synapse(ids[i], ids[i + 1], delay=1)
    return net, ids


class TestMappings:
    def test_round_robin_capacity_respected(self):
        net, _ = chain_network(10)
        m = round_robin_mapping(net, TINY)
        assert (m.core_loads() <= TINY.neurons_per_core).all()
        assert m.num_cores == 3
        assert m.num_chips == 2  # cores 0,1 on chip 0; core 2 on chip 1

    def test_greedy_capacity_respected(self):
        net, _ = chain_network(13)
        m = greedy_locality_mapping(net, TINY)
        assert (m.core_loads() <= TINY.neurons_per_core).all()
        assert m.core_of.size == 13

    def test_greedy_keeps_chain_neighbors_together(self):
        net, _ = chain_network(8)
        m = greedy_locality_mapping(net, TINY)
        # BFS order along a chain fills core 0 with vertices 0..3
        assert len({int(m.core_of[i]) for i in range(4)}) == 1

    def test_greedy_covers_disconnected_components(self):
        net = Network()
        net.add_neurons(6)
        m = greedy_locality_mapping(net, TINY)
        assert (m.core_of >= 0).all()

    def test_real_platform_capacities(self):
        net, _ = chain_network(5)
        m = round_robin_mapping(net, LOIHI)
        assert m.neurons_per_core == 1024
        assert m.num_cores == 1

    def test_empty_network(self):
        net = Network()
        m = round_robin_mapping(net, TINY)
        assert m.num_cores == 0 and m.num_chips == 0


class TestTraffic:
    def test_chain_traffic_tiers(self):
        net, ids = chain_network(10)
        m = greedy_locality_mapping(net, TINY)
        r = simulate(net, [ids[0]], engine="dense", max_steps=20)
        t = mapping_traffic(net, m, r)
        # 9 synapse crossings, one spike each
        assert t.total == 9
        # locality keeps most hops on-core: only the 2 core boundaries and
        # 1 chip boundary leave
        assert t.intra_core == 7
        assert t.inter_core + t.inter_chip == 2
        assert t.inter_chip == 1

    def test_locality_beats_round_robin_on_shuffled_ids(self):
        # build a chain whose neuron ids are interleaved so round-robin
        # splits neighbors across cores
        rng = np.random.default_rng(1)
        order = rng.permutation(12)
        net = Network()
        ids = [net.add_neuron(tau=1.0) for _ in range(12)]
        chain_order = [int(x) for x in order]
        for a, b in zip(chain_order, chain_order[1:]):
            net.add_synapse(ids[a], ids[b], delay=1)
        r = simulate(net, [ids[chain_order[0]]], engine="dense", max_steps=30)
        greedy = mapping_traffic(net, greedy_locality_mapping(net, TINY), r)
        naive = mapping_traffic(net, round_robin_mapping(net, TINY), r)
        assert greedy.intra_core > naive.intra_core

    def test_silent_network_no_traffic(self):
        net, ids = chain_network(5)
        m = round_robin_mapping(net, TINY)
        r = simulate(net, [], engine="dense", max_steps=5)
        t = mapping_traffic(net, m, r)
        assert t.total == 0

    def test_mismatched_mapping_rejected(self):
        net, ids = chain_network(5)
        other, _ = chain_network(7)
        m = round_robin_mapping(other, TINY)
        r = simulate(net, [ids[0]], engine="dense", max_steps=10)
        with pytest.raises(ValidationError):
            mapping_traffic(net, m, r)
