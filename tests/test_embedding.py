"""Tests of the crossbar H_n and the Section 4.4 embedding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embedding import Crossbar, CrossbarEdgeType, EmbeddingSession, embed_graph, embedded_sssp
from repro.embedding.embed import embedding_scale
from repro.errors import EmbeddingError
from repro.workloads import WeightedDigraph, complete_graph, gnp_graph
from tests.conftest import ref_sssp


class TestCrossbarStructure:
    def test_vertex_count(self):
        assert Crossbar(3).num_vertices == 18  # the Figure-2 H_3

    def test_h3_edge_type_counts(self):
        xbar = Crossbar(3)
        counts = {}
        for _a, _b, t in xbar.structural_edges():
            counts[t] = counts.get(t, 0) + 1
        assert counts[CrossbarEdgeType.DIAGONAL] == 3
        # row edges: n(n-1) total split by side of the diagonal
        assert counts[CrossbarEdgeType.ROW_RIGHT] + counts[CrossbarEdgeType.ROW_LEFT] == 6
        assert counts[CrossbarEdgeType.COLUMN_DOWN] + counts[CrossbarEdgeType.COLUMN_UP] == 6

    def test_structural_edge_total_theta_n_squared(self):
        n = 7
        xbar = Crossbar(n)
        total = sum(1 for _ in xbar.structural_edges())
        assert total == n + 2 * n * (n - 1)

    def test_rows_lead_away_from_diagonal(self):
        xbar = Crossbar(4)
        for a, b, t in xbar.structural_edges():
            if t == CrossbarEdgeType.ROW_RIGHT:
                i, j = divmod(a - 16, 4)
                assert j >= i  # moving right happens at/right of the diagonal
            if t == CrossbarEdgeType.ROW_LEFT:
                i, j = divmod(a - 16, 4)
                assert j <= i

    def test_columns_lead_toward_diagonal(self):
        xbar = Crossbar(4)
        for a, b, t in xbar.structural_edges():
            if t == CrossbarEdgeType.COLUMN_DOWN:
                i, j = divmod(b, 4)
                assert i <= j  # moving down only above the diagonal
            if t == CrossbarEdgeType.COLUMN_UP:
                i, j = divmod(b, 4)
                assert i >= j

    def test_index_validation(self):
        xbar = Crossbar(3)
        with pytest.raises(EmbeddingError):
            xbar.minus(3, 0)
        with pytest.raises(EmbeddingError):
            xbar.plus(0, -1)

    def test_type2_requires_off_diagonal(self):
        with pytest.raises(EmbeddingError):
            Crossbar(3).graph_edge_endpoints(1, 1)

    def test_order_validation(self):
        with pytest.raises(EmbeddingError):
            Crossbar(0)


class TestEmbedding:
    def test_scale_reaches_2n(self):
        g = WeightedDigraph(5, [(0, 1, 3)])
        s = embedding_scale(g)
        assert 3 * s >= 2 * 5

    def test_detour_identity(self):
        """1 + |j-i| + (l - 2|i-j| - 1) + |j-i| == l (the paper's check)."""
        xbar = Crossbar(6)
        for i in range(6):
            for j in range(6):
                if i == j:
                    continue
                l = 2 * 6 + 3  # any scaled length >= 2n
                type2 = l - xbar.type2_path_detour(i, j)
                assert 1 + abs(j - i) + type2 + abs(j - i) == l

    def test_embeds_only_existing_edges(self):
        g = WeightedDigraph(4, [(0, 1, 5), (2, 3, 5)])
        emb = embed_graph(g)
        assert emb.programmed_edges == 2

    def test_parallel_edges_collapse_to_min(self):
        g = WeightedDigraph(3, [(0, 1, 9), (0, 1, 4)])
        emb = embed_graph(g)
        assert emb.programmed_edges == 1
        r = embedded_sssp(g, 0, embedded=emb)
        assert r.dist[1] == 4

    def test_self_loops_skipped(self):
        g = WeightedDigraph(2, [(0, 0, 3), (0, 1, 3)])
        emb = embed_graph(g)
        assert emb.programmed_edges == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_sssp_equivalence_random(self, seed):
        g = gnp_graph(7, 0.35, max_length=5, seed=seed)
        r = embedded_sssp(g, 0)
        assert np.array_equal(r.dist, ref_sssp(g, 0))

    def test_sssp_equivalence_complete_graph(self):
        g = complete_graph(5, max_length=7, seed=9)
        r = embedded_sssp(g, 1)
        assert np.array_equal(r.dist, ref_sssp(g, 1))

    def test_target_mode(self, small_graph):
        r = embedded_sssp(small_graph, 0, target=3)
        assert r.dist[3] == 6

    def test_embedding_cost_theta_n(self, small_graph):
        """Crossbar simulated time ~ scale * L with scale >= 2n / wmin."""
        native = embedded_sssp(small_graph, 0)
        assert native.cost.extras["embedding_scale"] == embedding_scale(small_graph)
        L = 8
        assert native.cost.simulated_ticks == L * embedding_scale(small_graph)

    def test_crossbar_neuron_footprint(self, small_graph):
        r = embedded_sssp(small_graph, 0)
        assert r.cost.neuron_count == 2 * small_graph.n**2

    def test_empty_graph_rejected(self):
        with pytest.raises(EmbeddingError):
            embed_graph(WeightedDigraph(0, []))

    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
        p=st.floats(min_value=0.2, max_value=0.9),
    )
    @settings(max_examples=20, deadline=None)
    def test_embedding_preserves_sssp_property(self, n, seed, p):
        g = gnp_graph(n, p, max_length=4, seed=seed)
        assert np.array_equal(embedded_sssp(g, 0).dist, ref_sssp(g, 0))


class TestEmbeddingSession:
    def test_reprogram_cost_m_per_switch(self):
        session = EmbeddingSession(n=6)
        g1 = gnp_graph(6, 0.4, max_length=3, seed=1)
        g2 = gnp_graph(6, 0.4, max_length=3, seed=2)
        session.embed(g1)
        m1 = session.current.programmed_edges
        assert session.reprogram_ops == m1
        session.embed(g2)
        m2 = session.current.programmed_edges
        # embed g1 (m1) + unembed g1 (m1) + embed g2 (m2)
        assert session.reprogram_ops == 2 * m1 + m2
        assert session.history == [m1, m2]

    def test_graph_too_large_rejected(self):
        session = EmbeddingSession(n=3)
        with pytest.raises(EmbeddingError):
            session.embed(gnp_graph(5, 0.5, seed=0))

    def test_unembed_idempotent(self):
        session = EmbeddingSession(n=4)
        session.unembed()
        assert session.reprogram_ops == 0


class TestRendering:
    def test_delay_map_marks_edges_and_diagonal(self):
        from repro.embedding import embed_graph
        from repro.embedding.render import type2_delay_map

        g = WeightedDigraph(3, [(0, 1, 6), (2, 0, 6)])
        emb = embed_graph(g)
        text = type2_delay_map(emb)
        lines = text.splitlines()
        assert "Type-2 delays of H_3" in lines[0]
        # diagonal dashes, programmed cells numeric, absent cells dots
        assert lines[2].split()[1] == "-"
        body = "\n".join(lines[2:])
        assert "." in body
        # the programmed delay for (0,1): scale*6 - (2*1+1)
        expected = emb.scale * 6 - 3
        assert str(expected) in body

    def test_delay_map_matches_edge_count(self):
        from repro.embedding import embed_graph
        from repro.embedding.render import type2_delay_map

        g = gnp_graph(5, 0.5, max_length=4, seed=6)
        emb = embed_graph(g)
        text = type2_delay_map(emb)
        numeric_cells = sum(
            1
            for line in text.splitlines()[2:]
            for cell in line.split()[1:]
            if cell not in ("-", ".")
        )
        assert numeric_cells == emb.programmed_edges
