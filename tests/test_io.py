"""Edge-list serialization tests."""

import pytest

from repro.errors import GraphError
from repro.workloads import WeightedDigraph, gnp_graph, read_edge_list, write_edge_list


def test_roundtrip(tmp_path):
    g = gnp_graph(15, 0.3, max_length=9, seed=11)
    p = tmp_path / "g.edges"
    write_edge_list(g, p)
    assert read_edge_list(p) == g


def test_roundtrip_empty(tmp_path):
    g = WeightedDigraph(4, [])
    p = tmp_path / "empty.edges"
    write_edge_list(g, p)
    back = read_edge_list(p)
    assert back.n == 4 and back.m == 0


def test_comments_and_blank_lines(tmp_path):
    p = tmp_path / "c.edges"
    p.write_text("# header comment\n3 2\n\n0 1 5  # inline\n1 2 7\n")
    g = read_edge_list(p)
    assert sorted(g.edges()) == [(0, 1, 5), (1, 2, 7)]


def test_bad_header(tmp_path):
    p = tmp_path / "bad.edges"
    p.write_text("3\n0 1 5\n")
    with pytest.raises(GraphError):
        read_edge_list(p)


def test_edge_count_mismatch(tmp_path):
    p = tmp_path / "mismatch.edges"
    p.write_text("3 2\n0 1 5\n")
    with pytest.raises(GraphError):
        read_edge_list(p)


def test_empty_file(tmp_path):
    p = tmp_path / "none.edges"
    p.write_text("# nothing\n")
    with pytest.raises(GraphError):
        read_edge_list(p)


def test_malformed_edge_line(tmp_path):
    p = tmp_path / "mal.edges"
    p.write_text("2 1\n0 1\n")
    with pytest.raises(GraphError):
        read_edge_list(p)


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        from repro.workloads.io import read_dimacs, write_dimacs

        g = gnp_graph(12, 0.3, max_length=9, seed=21)
        p = tmp_path / "g.gr"
        write_dimacs(g, p)
        assert read_dimacs(p) == g

    def test_one_indexing(self, tmp_path):
        from repro.workloads.io import read_dimacs

        p = tmp_path / "tiny.gr"
        p.write_text("c comment\np sp 2 1\na 1 2 5\n")
        g = read_dimacs(p)
        assert list(g.edges()) == [(0, 1, 5)]

    def test_missing_header(self, tmp_path):
        from repro.workloads.io import read_dimacs

        p = tmp_path / "bad.gr"
        p.write_text("a 1 2 5\n")
        with pytest.raises(GraphError):
            read_dimacs(p)

    def test_arc_count_mismatch(self, tmp_path):
        from repro.workloads.io import read_dimacs

        p = tmp_path / "bad2.gr"
        p.write_text("p sp 2 2\na 1 2 5\n")
        with pytest.raises(GraphError):
            read_dimacs(p)

    def test_unknown_record(self, tmp_path):
        from repro.workloads.io import read_dimacs

        p = tmp_path / "bad3.gr"
        p.write_text("p sp 1 0\nx nope\n")
        with pytest.raises(GraphError):
            read_dimacs(p)
