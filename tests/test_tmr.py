"""Tests of triple-modular-redundancy circuit wrapping (repro.circuits.tmr)."""

import pytest

from repro.circuits import CircuitBuilder, run_circuit, tmr
from repro.circuits.adders import ripple_adder
from repro.circuits.max_circuits import wired_or_max
from repro.core import SpikeDrop, StuckAtSilent
from repro.errors import CircuitError


def build_max(b: CircuitBuilder) -> None:
    xs = [b.input_bits(f"x{i}", 4) for i in range(3)]
    res = wired_or_max(b, xs)
    b.output_bits("max", res.out_bits)


def build_adder(b: CircuitBuilder) -> None:
    a = b.input_bits("a", 3)
    c = b.input_bits("b", 3)
    total = ripple_adder(b, a, c)
    b.output_bits("sum", total)


class TestConstruction:
    def test_replicas_must_be_odd_and_at_least_three(self):
        for bad in (0, 1, 2, 4):
            with pytest.raises(CircuitError):
                tmr(build_max, replicas=bad)

    def test_empty_build_rejected(self):
        with pytest.raises(CircuitError):
            tmr(lambda b: None)

    def test_structure(self):
        w = tmr(build_max)
        assert len(w.replicas) == 3
        assert len(w.voters) == 4  # one vote per output bit
        sizes = {len(r) for r in w.replicas}
        assert len(sizes) == 1  # identical replicas
        # replicas are disjoint neuron sets
        all_ids = [nid for rep in w.replicas for nid in rep]
        assert len(all_ids) == len(set(all_ids))

    def test_five_replicas(self):
        w = tmr(build_max, replicas=5)
        assert len(w.replicas) == 5
        assert run_circuit(w.builder, {"x0": 3, "x1": 9, "x2": 1})["max"] == 9


class TestFaultFreeCorrectness:
    def test_matches_unprotected_max(self):
        plain = CircuitBuilder()
        build_max(plain)
        w = tmr(build_max)
        for vals in ({"x0": 5, "x1": 12, "x2": 7}, {"x0": 0, "x1": 0, "x2": 0},
                     {"x0": 15, "x1": 15, "x2": 15}):
            assert run_circuit(plain, vals) == run_circuit(w.builder, vals)

    def test_adder_wraps_too(self):
        w = tmr(build_adder, name="radd")
        out = run_circuit(w.builder, {"a": 5, "b": 6})
        assert out["sum"] == 11


class TestFaultMasking:
    """The acceptance criterion: a fault rate that measurably breaks the
    unprotected circuit is exactly masked when confined to one replica."""

    VALS = {"x0": 5, "x1": 12, "x2": 7}
    SEEDS = range(20)

    def test_unprotected_circuit_measurably_fails(self):
        plain = CircuitBuilder()
        build_max(plain)
        failures = sum(
            run_circuit(plain, self.VALS, faults=SpikeDrop(0.3, seed=s))["max"] != 12
            for s in self.SEEDS
        )
        assert failures > 0

    def test_tmr_masks_single_replica_drops(self):
        w = tmr(build_max)
        for s in self.SEEDS:
            out = run_circuit(
                w.builder,
                self.VALS,
                faults=SpikeDrop(0.3, seed=s, sources=w.replicas[0]),
            )
            assert out["max"] == 12, f"seed {s}"

    def test_tmr_masks_a_fully_silenced_replica(self):
        w = tmr(build_max)
        windows = [(nid, 0, 1000) for nid in w.replicas[1]]
        out = run_circuit(w.builder, self.VALS, faults=StuckAtSilent(windows))
        assert out["max"] == 12

    def test_majority_of_faulty_replicas_loses(self):
        # sanity check of the vote itself: silencing two of three replicas
        # kills the (all-healthy-bits) answer
        w = tmr(build_max)
        windows = [(nid, 0, 1000) for rep in w.replicas[:2] for nid in rep]
        out = run_circuit(w.builder, self.VALS, faults=StuckAtSilent(windows))
        assert out["max"] == 0
