"""Memory regression: sparse compilation must stay O(n + m).

The whole point of the sparse CSR core is running networks whose dense
(n, n) weight matrix would not fit in memory: at n = 50 000 a float64
dense matrix is 20 GB, and even a boolean adjacency mask is 2.5 GB.
These tests compile a 50k-neuron SSSP network under ``tracemalloc`` and
pin the peak allocation far below any dense materialization, so a future
"helpful" densification anywhere in the compile path fails loudly.
"""

import tracemalloc

from repro.algorithms import sssp_network
from repro.workloads import path_graph

#: Generous O(n + m) budget: measured peak is ~5 MB; the smallest dense
#: (n, n) artifact (a boolean mask) would be 2.5 GB.  Anything past this
#: means something materialized a superlinear intermediate.
PEAK_BUDGET_BYTES = 64 * 1024 * 1024

N_VERTICES = 50_000


def test_sparse_compile_50k_never_materializes_dense():
    g = path_graph(N_VERTICES, max_length=4, seed=1)
    net, _ids = sssp_network(g)
    tracemalloc.start()
    try:
        compiled = net.compile(sparse=True)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert compiled.n == N_VERTICES
    art = getattr(compiled, "_sparse_artifact", None)
    assert art is not None and art.nnz == compiled.m
    assert peak < PEAK_BUDGET_BYTES, (
        f"sparse compile peaked at {peak / 1e6:.1f} MB for n={compiled.n}, "
        f"m={compiled.m}; something materialized a dense intermediate"
    )


def test_sparse_simulation_memory_stays_linear():
    """Running the compiled network sparse must likewise avoid any (n, n)
    or (steps, n) materialization: the ring buffer holds only in-flight
    deliveries."""
    from repro.core import simulate

    g = path_graph(N_VERTICES, max_length=4, seed=1)
    net, ids = sssp_network(g)
    compiled = net.compile(sparse=True)
    tracemalloc.start()
    try:
        r = simulate(
            compiled, [ids[0]], engine="sparse", max_steps=4 * N_VERTICES,
            watch=ids,
        )
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert r.spike_counts.sum() == N_VERTICES  # every vertex reached once
    assert peak < PEAK_BUDGET_BYTES, (
        f"sparse simulation peaked at {peak / 1e6:.1f} MB"
    )
