"""Tests for repro.dynamic: mutable graphs, incremental recompilation,
op streams, and the serving layer's first-class mutations.

The load-bearing piece is the Hypothesis differential harness: after any
mutation sequence, the incrementally recompiled networks must be
spike-for-spike identical to a from-scratch rebuild — same rasters, same
stop metadata, same decoded distances — and the build cache must hold
exactly the current version's entries while unrelated graphs survive.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cache import BuildCache, default_build_cache
from repro.core.network import Network
from repro.core.run import simulate
from repro.dynamic.graph import MutableGraph
from repro.dynamic.recompile import IncrementalRecompiler, compile_vertex_network
from repro.dynamic.stream import (
    OP_TYPES,
    generate_stream,
    op_to_request,
    read_stream,
    run_stream_replay,
    write_stream,
)
from repro.errors import GraphError, ValidationError
from repro.service import MUTATION_KINDS, QueryRequest, QueryServer
from repro.service.resultcache import TTLResultCache
from repro.workloads.generators import gnp_graph, grid_graph
from repro.workloads.graph import WeightedDigraph
from tests.conftest import ref_sssp
from tests.differential import assert_networks_identical, assert_same_simulation


def build_from_scratch(snap: WeightedDigraph, *, unit_delay: bool):
    """The non-incremental reference: Python builder + compile."""
    net = Network()
    ids = [net.add_neuron(f"v{v}", one_shot=True) for v in range(snap.n)]
    for u, v, w in snap.edges():
        if u == v:
            continue
        net.add_synapse(ids[u], ids[v], weight=1.0, delay=1 if unit_delay else int(w))
    return net.compile()


# --------------------------------------------------------------------- #
# MutableGraph semantics
# --------------------------------------------------------------------- #


class TestMutableGraph:
    def test_wraps_base_and_mutates(self):
        g = MutableGraph(3)
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        assert g.m == 2 and g.version == 2
        assert g.edge_weight(0, 1) == 2
        g.reweight(0, 1, 5)
        assert g.edge_weight(0, 1) == 5
        g.remove_edge(1, 2)
        assert g.m == 1
        nid = g.add_node()
        assert nid == 3 and g.n == 4

    def test_no_parallel_edges(self):
        g = MutableGraph(2)
        g.add_edge(0, 1, 1)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 4)

    def test_rejects_parallel_edge_base(self):
        base = WeightedDigraph.from_arrays(
            2, np.array([0, 0]), np.array([1, 1]), np.array([1, 2])
        )
        with pytest.raises(GraphError):
            MutableGraph(base)

    def test_weight_validation(self):
        g = MutableGraph(2)
        for bad in (0, -1, 1.5, True, "2"):
            with pytest.raises(GraphError):
                g.add_edge(0, 1, bad)

    def test_tombstoned_remove_node(self):
        g = MutableGraph(3)
        g.add_edge(0, 1, 1)
        g.add_edge(1, 2, 1)
        dropped = g.remove_node(1)
        assert dropped == 2 and g.m == 0
        assert g.is_removed(1) and g.n == 3  # the slot persists
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 1)  # dead endpoint
        assert g.live_vertices() == [0, 2]
        assert g.add_node() == 3  # ids never reused

    def test_versions_and_delta_tracking(self):
        g = MutableGraph(3)
        g.add_edge(0, 1, 2)
        assert g.topology_version == g.version
        g.reweight(0, 1, 3)
        assert g.weights_version == g.version
        assert g.topology_version < g.version

    def test_snapshot_matches_state_and_is_cached(self):
        base = gnp_graph(12, 0.3, max_length=5, seed=4)
        g = MutableGraph(base)
        assert g.snapshot() is g.snapshot()
        snap0 = g.snapshot()
        assert sorted(snap0.edges()) == sorted(base.edges())
        u, v, w = next(iter(g.edges()))
        g.reweight(u, v, (w % 5) + 1)
        snap1 = g.snapshot()
        assert snap1 is not snap0
        assert snap0.structure_key() != snap1.structure_key()

    def test_versioned_keys(self):
        g = MutableGraph(2, uid="t")
        k0 = g.structure_key()
        assert k0.startswith("dyn:t:v0:")
        g.add_edge(0, 1, 1)
        assert g.structure_key().startswith("dyn:t:v1:")
        assert g.key_prefix() == "dyn:t:"
        assert g.snapshot().structure_key() == g.structure_key()


# --------------------------------------------------------------------- #
# Satellite 1: weights are part of the structure fingerprint
# --------------------------------------------------------------------- #


class TestStructureKeyWeights:
    def test_one_weight_difference_never_shares_cache_entry(self):
        tails = np.array([0, 1, 2])
        heads = np.array([1, 2, 0])
        a = WeightedDigraph.from_arrays(3, tails, heads, np.array([1, 2, 3]))
        b = WeightedDigraph.from_arrays(3, tails, heads, np.array([1, 2, 4]))
        assert a.structure_key() != b.structure_key()
        cache = BuildCache(maxsize=8)
        built = []

        def make_build(tag):
            def build():
                built.append(tag)
                return tag

            return build

        va = cache.get_or_build(("sssp_pseudo", False, a.structure_key()), make_build("a"))
        vb = cache.get_or_build(("sssp_pseudo", False, b.structure_key()), make_build("b"))
        assert (va, vb) == ("a", "b")
        assert built == ["a", "b"]  # second graph built fresh: no key collision


# --------------------------------------------------------------------- #
# Satellite 2: BuildCache invalidation API
# --------------------------------------------------------------------- #


class TestBuildCacheAPI:
    def test_put_contains_invalidate(self):
        cache = BuildCache(maxsize=8)
        cache.put(("sssp_pseudo", False, "dyn:g:v0:abc"), "net0")
        cache.put(("khop_reach", "dyn:g:v0:abc"), "net0k")
        cache.put(("sssp_pseudo", False, "other"), "netx")
        assert ("sssp_pseudo", False, "dyn:g:v0:abc") in cache
        assert cache.invalidate("dyn:g:v0:abc") == 2
        assert ("sssp_pseudo", False, "dyn:g:v0:abc") not in cache
        assert ("sssp_pseudo", False, "other") in cache
        stats = cache.stats()
        assert stats["invalidations"] == 2
        assert stats["seeds"] == 3

    def test_invalidate_prefix_scopes_to_one_graph(self):
        cache = BuildCache(maxsize=8)
        for v in range(3):
            cache.put(("sssp_pseudo", False, f"dyn:a:v{v}:x"), v)
        cache.put(("sssp_pseudo", False, "dyn:b:v0:y"), "keep")
        assert cache.invalidate_prefix("dyn:a:") == 3
        assert ("sssp_pseudo", False, "dyn:b:v0:y") in cache
        assert len(cache) == 1


# --------------------------------------------------------------------- #
# Tentpole: Hypothesis differential — incremental == from-scratch
# --------------------------------------------------------------------- #


def _random_mutation(data, g: MutableGraph) -> str:
    live = g.live_vertices()
    edges = list(g.edges())
    choices = ["add_node"]
    if edges:
        choices += ["reweight", "remove_edge"]
    missing = [
        (u, v)
        for u in live
        for v in live
        if u != v and not g.has_edge(u, v)
    ]
    if missing:
        choices.append("add_edge")
    if len(live) > 2:
        choices.append("remove_node")
    op = data.draw(st.sampled_from(choices), label="op")
    if op == "add_node":
        g.add_node()
    elif op == "add_edge":
        u, v = data.draw(st.sampled_from(missing), label="edge")
        g.add_edge(u, v, data.draw(st.integers(1, 4), label="w"))
    elif op == "reweight":
        u, v, _w = data.draw(st.sampled_from(edges), label="edge")
        g.reweight(int(u), int(v), data.draw(st.integers(1, 4), label="w"))
    elif op == "remove_edge":
        u, v, _w = data.draw(st.sampled_from(edges), label="edge")
        g.remove_edge(int(u), int(v))
    else:
        g.remove_node(data.draw(st.sampled_from(live), label="v"))
    return op


@st.composite
def small_graphs(draw):
    n = draw(st.integers(2, 6))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=min(len(pairs), 10))
    )
    weights = draw(
        st.lists(st.integers(1, 4), min_size=len(edges), max_size=len(edges))
    )
    tails = np.asarray([u for u, _ in edges], dtype=np.int64)
    heads = np.asarray([v for _, v in edges], dtype=np.int64)
    return WeightedDigraph.from_arrays(n, tails, heads, np.asarray(weights, dtype=np.int64))


class TestIncrementalDifferential:
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(base=small_graphs(), data=st.data())
    def test_incremental_equals_rebuild_spike_for_spike(self, base, data):
        cache = BuildCache(maxsize=32)
        g = MutableGraph(base, uid="hyp")
        rec = IncrementalRecompiler(g, cache=cache)
        rec.prime()
        # an unrelated resident that must survive every invalidation
        cache.put(("sssp_pseudo", False, "unrelated"), "survivor")

        n_mutations = data.draw(st.integers(1, 4), label="n_mutations")
        for _ in range(n_mutations):
            old_key = g.structure_key()
            _random_mutation(data, g)
            rec.refresh()
            new_key = g.structure_key()
            snap = g.snapshot()

            # networks identical to a from-scratch rebuild, both families
            for family, unit in (("sssp", False), ("khop", True)):
                net, node_ids = rec.network(family)
                ref = build_from_scratch(snap, unit_delay=unit)
                assert_networks_identical(net, ref)
                assert node_ids == list(range(snap.n))
            # ...and spike-for-spike under a real dense simulation
            source = data.draw(
                st.sampled_from(g.live_vertices() or [0]), label="source"
            )
            horizon = (snap.n - 1) * max(1, snap.max_length()) + 1
            net, _ = rec.network("sssp")
            assert_same_simulation(
                net, build_from_scratch(snap, unit_delay=False), [source], horizon
            )

            # cache exactness: the new version's entries are present, the
            # superseded version's are gone, the unrelated resident lives
            assert ("sssp_pseudo", False, new_key) in cache
            assert ("khop_reach", new_key) in cache
            assert ("sssp_pseudo", False, old_key) not in cache
            assert ("khop_reach", old_key) not in cache
            assert ("sssp_pseudo", False, "unrelated") in cache
        assert cache.stats()["invalidations"] >= 2 * n_mutations

    def test_decoded_distances_match_dijkstra_after_mutations(self):
        from repro.algorithms.sssp_pseudo import sssp_plan, sssp_decode

        base = gnp_graph(20, 0.2, max_length=5, seed=6)
        g = MutableGraph(base)
        rec = IncrementalRecompiler(g, cache=BuildCache(maxsize=8))
        rec.prime()
        g.add_edge(*next((u, v) for u in range(20) for v in range(20)
                         if u != v and not g.has_edge(u, v)), 2)
        u, v, w = next(iter(g.edges()))
        g.reweight(int(u), int(v), (int(w) % 5) + 1)
        rec.refresh()
        snap = g.snapshot()
        plan = sssp_plan(snap, 0)
        res = simulate(
            plan.net,
            list(plan.stimulus),
            max_steps=plan.max_steps,
            terminal=plan.terminal,
            stop_when_quiescent=True,
        )
        assert np.array_equal(sssp_decode(plan, res).dist, ref_sssp(snap, 0))


# --------------------------------------------------------------------- #
# Recompiler modes and default-cache seeding
# --------------------------------------------------------------------- #


class TestRecompilerModes:
    def test_vectorized_compile_matches_builder(self):
        g = gnp_graph(40, 0.1, max_length=6, seed=12)
        for unit in (False, True):
            assert_networks_identical(
                compile_vertex_network(g, unit_delay=unit),
                build_from_scratch(g, unit_delay=unit),
            )

    def test_weight_patch_vs_topology_recompile(self):
        base = gnp_graph(30, 0.1, max_length=6, seed=9)
        g = MutableGraph(base)
        rec = IncrementalRecompiler(g, cache=BuildCache(maxsize=8))
        rec.prime()
        u, v, w = next(iter(g.edges()))
        g.reweight(int(u), int(v), (int(w) % 6) + 1)
        report = rec.refresh()
        assert report.families == {"sssp": "patched_weights", "khop": "reused"}
        g.add_node()
        report = rec.refresh()
        assert report.families == {"sssp": "recompiled", "khop": "recompiled"}
        assert report.graph_version == g.version
        stats = rec.stats()
        assert stats["weight_patches"] == 1
        assert stats["vector_recompiles"] == 2
        assert stats["reuses"] == 1

    def test_seeds_default_cache_for_plan_functions(self):
        from repro.algorithms.sssp_pseudo import sssp_network

        base = gnp_graph(15, 0.2, max_length=4, seed=10)
        g = MutableGraph(base)
        rec = IncrementalRecompiler(g)  # default_build_cache
        try:
            rec.prime()
            g.reweight(*[(int(u), int(v)) for u, v, _ in g.edges()][0], 3)
            rec.refresh()
            snap = g.snapshot()
            before = default_build_cache.stats()["hits"]
            net, node_ids = sssp_network(snap)  # must hit the seeded entry
            assert default_build_cache.stats()["hits"] == before + 1
            inc_net, inc_ids = rec.network("sssp")
            assert net is inc_net and list(node_ids) == inc_ids
        finally:
            default_build_cache.invalidate_prefix(g.key_prefix())

    def test_unknown_family_raises(self):
        rec = IncrementalRecompiler(MutableGraph(2), cache=BuildCache(maxsize=4))
        with pytest.raises(ValidationError):
            rec.network("apsp")

    def test_sparse_artifact_carried_across_patches(self):
        """A network that ran on the sparse engine keeps its CSR artifact
        across weight patches and topology recompiles: ``refresh`` rebuilds
        the delay buckets for the new version (``sparse_rebuckets``) and
        republishes them under the new structure key, so the next sparse run
        pays no lazy re-bucketing and invalidation stays version-exact."""
        from repro.core.sparse import sparse_compile

        base = gnp_graph(30, 0.1, max_length=6, seed=9)
        g = MutableGraph(base)
        cache = BuildCache(maxsize=8)
        rec = IncrementalRecompiler(g, cache=cache)
        rec.prime()
        net, _ = rec.network("sssp")
        sparse_compile(net)  # as if a prior run went through the sparse engine

        u, v, w = next(iter(g.edges()))
        g.reweight(int(u), int(v), (int(w) % 6) + 1)
        report = rec.refresh()
        assert report.families["sssp"] == "patched_weights"
        assert rec.stats()["sparse_rebuckets"] == 1
        patched, _ = rec.network("sssp")
        art = getattr(patched, "_sparse_artifact", None)
        assert art is not None and art.net is patched
        key = g.snapshot().structure_key()
        assert ("sparse_csr", key) in cache

        g.add_node()
        rec.refresh()
        assert rec.stats()["sparse_rebuckets"] == 2
        assert ("sparse_csr", key) not in cache  # old version invalidated
        assert ("sparse_csr", g.snapshot().structure_key()) in cache

    def test_sparse_artifact_not_built_for_dense_only_networks(self):
        """No sparse run ever happened: refresh must not eagerly bucket."""
        g = MutableGraph(gnp_graph(20, 0.15, max_length=5, seed=4))
        rec = IncrementalRecompiler(g, cache=BuildCache(maxsize=8))
        rec.prime()
        g.add_node()
        rec.refresh()
        assert rec.stats()["sparse_rebuckets"] == 0
        net, _ = rec.network("sssp")
        assert getattr(net, "_sparse_artifact", None) is None


# --------------------------------------------------------------------- #
# Serving-layer mutations
# --------------------------------------------------------------------- #


def _result(server, request, timeout=60.0):
    return server.submit(request).result(timeout)


class TestServerMutations:
    def test_mutations_apply_and_version_surfaces(self):
        g = grid_graph(4, 4, max_length=3, seed=0)
        with QueryServer(workers=2) as server:
            server.register_dynamic_graph("g", g)
            r0 = _result(server, QueryRequest(kind="sssp", graph_id="g", source=0))
            assert r0.ok and r0.graph_version == 0
            assert np.array_equal(r0.dist, ref_sssp(g, 0))

            mut = _result(
                server, QueryRequest(kind="reweight", graph_id="g", u=0, v=1, weight=3)
            )
            assert mut.ok and mut.graph_version == 1
            assert mut.outputs == {"u": 0, "v": 1, "weight": 3}

            r1 = _result(server, QueryRequest(kind="sssp", graph_id="g", source=0))
            assert r1.ok and r1.graph_version == 1
            mutated = MutableGraph(g)
            mutated.reweight(0, 1, 3)
            assert np.array_equal(r1.dist, ref_sssp(mutated.snapshot(), 0))

    def test_add_and_remove_through_server(self):
        with QueryServer(workers=1) as server:
            server.register_dynamic_graph("g", grid_graph(3, 3, max_length=2, seed=1))
            added = _result(server, QueryRequest(kind="add_node", graph_id="g"))
            assert added.ok and added.outputs["node"] == 9
            linked = _result(
                server, QueryRequest(kind="add_edge", graph_id="g", u=0, v=9, weight=1)
            )
            assert linked.ok
            r = _result(server, QueryRequest(kind="sssp", graph_id="g", source=0))
            assert r.ok and int(r.dist[9]) == 1
            removed = _result(server, QueryRequest(kind="remove_node", graph_id="g", u=9))
            assert removed.ok and removed.outputs["removed_edges"] == 1
            r2 = _result(server, QueryRequest(kind="sssp", graph_id="g", source=0))
            assert r2.ok and int(r2.dist[9]) == -1  # isolated tombstone

    def test_mutation_on_static_graph_rejected(self):
        with QueryServer(workers=1) as server:
            server.register_graph("s", grid_graph(3, 3, max_length=2, seed=1))
            with pytest.raises(ValidationError, match="register_dynamic_graph"):
                server.submit(QueryRequest(kind="reweight", graph_id="s", u=0, v=1, weight=2))

    def test_invalid_mutation_errors_do_not_wedge_writes(self):
        with QueryServer(workers=1) as server:
            server.register_dynamic_graph("g", grid_graph(3, 3, max_length=2, seed=1))
            bad = _result(
                server, QueryRequest(kind="add_edge", graph_id="g", u=0, v=1, weight=5)
            )  # edge exists
            assert not bad.ok and bad.error_code is not None
            ok = _result(
                server, QueryRequest(kind="reweight", graph_id="g", u=0, v=1, weight=2)
            )  # the serial stream keeps flowing after the failure
            assert ok.ok and ok.graph_version == 1

    def test_result_cache_invalidated_for_superseded_version_only(self):
        with QueryServer(workers=1) as server:
            server.register_dynamic_graph("g", grid_graph(3, 3, max_length=2, seed=1))
            server.register_graph("other", grid_graph(3, 3, max_length=2, seed=5))
            q = QueryRequest(kind="sssp", graph_id="g", source=0)
            _result(server, q)
            _result(server, QueryRequest(kind="sssp", graph_id="other", source=0))
            hit = _result(server, q)
            assert hit.cached
            _result(server, QueryRequest(kind="reweight", graph_id="g", u=0, v=1, weight=2))
            post = _result(server, q)
            assert not post.cached  # old version's entry was dropped
            other_hit = _result(server, QueryRequest(kind="sssp", graph_id="other", source=0))
            assert other_hit.cached  # unrelated resident survived
            assert server.stats()["result_cache"]["invalidations"] >= 1
            assert "g" in server.stats()["dynamic"]

    def test_mutations_not_idempotent_not_cached(self):
        req = QueryRequest(kind="reweight", graph_id="g", u=0, v=1, weight=2)
        assert not req.idempotent
        assert req.cache_params() is None


class TestSchemaMutations:
    def test_mutation_kinds_validate(self):
        for kind in MUTATION_KINDS:
            assert kind in ("add_node", "remove_node", "add_edge", "remove_edge", "reweight")
        with pytest.raises(ValidationError):
            QueryRequest(kind="add_edge", graph_id="g", u=0)  # missing v
        with pytest.raises(ValidationError):
            QueryRequest(kind="add_edge", graph_id="g", u=0, v=1)  # missing weight
        with pytest.raises(ValidationError):
            QueryRequest(kind="reweight", graph_id="g", u=0, v=1, weight=0)
        with pytest.raises(ValidationError):
            QueryRequest(kind="remove_node", graph_id="g")  # missing u
        ok = QueryRequest(kind="add_node", graph_id="g")
        assert ok.kind == "add_node"

    def test_mutations_reject_read_only_options(self):
        from repro.core.transient import SpikeDrop

        with pytest.raises(ValidationError):
            QueryRequest(
                kind="reweight",
                graph_id="g",
                u=0,
                v=1,
                weight=2,
                faults=SpikeDrop(p=0.5, seed=1),
            )

    def test_roundtrip_through_dict(self):
        from repro.service import request_from_dict

        req = request_from_dict(
            {"kind": "add_edge", "graph_id": "g", "u": 1, "v": 2, "weight": 3}
        )
        assert (req.u, req.v, req.weight) == (1, 2, 3)


# --------------------------------------------------------------------- #
# Satellite 3: concurrent reads racing a mutation are never torn
# --------------------------------------------------------------------- #


class TestConcurrency:
    def test_reads_observe_pre_or_post_mutation_version(self):
        base = gnp_graph(24, 0.15, max_length=5, seed=3)
        shadow = MutableGraph(base)
        expected = {0: ref_sssp(shadow.snapshot(), 0)}
        u, v, w = next(iter(shadow.edges()))
        new_w = (int(w) % 5) + 1
        shadow.reweight(int(u), int(v), new_w)
        expected[1] = ref_sssp(shadow.snapshot(), 0)

        with QueryServer(workers=4, result_cache_size=0) as server:
            server.register_dynamic_graph("g", base)
            results = []
            errors = []

            def reader():
                try:
                    for _ in range(6):
                        results.append(
                            _result(server, QueryRequest(kind="sssp", graph_id="g", source=0))
                        )
                except Exception as exc:  # pragma: no cover - fail loudly below
                    errors.append(exc)

            def writer():
                try:
                    results.append(
                        _result(
                            server,
                            QueryRequest(
                                kind="reweight", graph_id="g",
                                u=int(u), v=int(v), weight=new_w,
                            ),
                        )
                    )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(3)]
            threads.append(threading.Thread(target=writer))
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert not errors
            for r in results:
                assert r.ok
                if r.dist is None:
                    continue  # the mutation ack
                # every read is internally consistent with its version —
                # pre- or post-mutation, never a torn mixture
                assert r.graph_version in expected
                assert np.array_equal(r.dist, expected[r.graph_version]), r.graph_version

    def test_writes_serialize_per_graph(self):
        with QueryServer(workers=4) as server:
            server.register_dynamic_graph("g", MutableGraph(2, uid="serial"))
            tickets = [
                server.submit(QueryRequest(kind="add_node", graph_id="g"))
                for _ in range(8)
            ]
            nodes = [t.result(60.0).outputs["node"] for t in tickets]
            assert nodes == list(range(2, 10))  # applied strictly in order


# --------------------------------------------------------------------- #
# Op streams
# --------------------------------------------------------------------- #


class TestStream:
    GRAPHS = {
        "grid": grid_graph(4, 4, max_length=3, seed=2),
        "gnp": gnp_graph(24, 0.12, max_length=5, seed=1),
    }

    def test_deterministic_and_roundtrips(self, tmp_path):
        ops = generate_stream(self.GRAPHS, 90, seed=7, write_fraction=0.3)
        assert ops == generate_stream(self.GRAPHS, 90, seed=7, write_fraction=0.3)
        assert [op["op"] for op in ops] == list(range(90))
        assert {op["type"] for op in ops} <= set(OP_TYPES)
        path = tmp_path / "s.jsonl"
        assert write_stream(ops, str(path)) == 90
        assert read_stream(str(path)) == ops

    def test_contains_reads_and_writes(self):
        ops = generate_stream(self.GRAPHS, 120, seed=0, write_fraction=0.3)
        kinds = {op["type"] for op in ops}
        assert "READ_SSSP" in kinds
        assert kinds & {"ADD_EDGE", "REWEIGHT", "REMOVE_EDGE"}

    def test_op_to_request(self):
        req = op_to_request(
            {"type": "REWEIGHT", "graph": "g", "params": {"u": 1, "v": 2, "weight": 3}}
        )
        assert req.kind == "reweight" and (req.u, req.v, req.weight) == (1, 2, 3)
        req = op_to_request({"type": "READ_KHOP", "graph": "g", "params": {"source": 0, "k": 4}})
        assert req.kind == "khop" and req.k == 4
        with pytest.raises(ValidationError):
            op_to_request({"type": "NOPE", "graph": "g", "params": {}})

    def test_read_stream_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "NOPE", "graph": "g"}\n')
        with pytest.raises(ValidationError):
            read_stream(str(path))
        path.write_text("not json\n")
        with pytest.raises(ValidationError):
            read_stream(str(path))

    def test_replay_zero_errors_and_incremental_path_exercised(self):
        ops = generate_stream(self.GRAPHS, 120, seed=0, write_fraction=0.3)
        report = run_stream_replay(self.GRAPHS, ops, workers=2)
        assert report["errors"] == 0, report["error_details"]
        assert report["completed"] == len(ops)
        assert set(report["final_versions"]) == {"grid", "gnp"}
        recompiles = sum(
            d["recompile"]["weight_patches"] + d["recompile"]["vector_recompiles"]
            for d in report["dynamic"].values()
        )
        assert recompiles > 0  # writes went through the incremental path
        for row in report["per_type"].values():
            assert row["p99_s"] >= row["p50_s"] >= 0.0

    def test_replay_rejects_unknown_graphs(self):
        with pytest.raises(ValidationError, match="unregistered"):
            run_stream_replay(
                self.GRAPHS,
                [{"op": 0, "type": "READ_SSSP", "graph": "nope", "params": {"source": 0}}],
            )


# --------------------------------------------------------------------- #
# Result-cache partial invalidation primitive
# --------------------------------------------------------------------- #


class TestResultCacheInvalidate:
    def test_invalidate_drops_only_one_resident(self):
        cache = TTLResultCache(maxsize=8, ttl_s=60.0)
        cache.put((("graph", "a"), "x"), 1)
        cache.put((("graph", "a"), "y"), 2)
        cache.put((("graph", "b"), "x"), 3)
        assert cache.invalidate(("graph", "a")) == 2
        assert cache.get((("graph", "a"), "x")) is None
        assert cache.get((("graph", "b"), "x")) == 3
        assert cache.stats()["invalidations"] == 2


# --------------------------------------------------------------------- #
# Temporal analysis carried across refreshes
# --------------------------------------------------------------------- #


class TestRecompilerTemporal:
    def _seeded(self, n=12, seed=6):
        g = MutableGraph(gnp_graph(n, 0.3, max_length=4, seed=seed))
        rec = IncrementalRecompiler(g, cache=BuildCache(maxsize=8))
        rec.prime()
        return g, rec

    def _scratch(self, rec, family):
        from repro.staticcheck import analyze_temporal

        net, _ids = rec.network(family)
        return analyze_temporal(net, stimulus=list(range(net.n)))

    def _assert_same(self, a, b):
        assert np.array_equal(a.live, b.live)
        assert np.array_equal(a.earliest, b.earliest)
        assert np.array_equal(a.latest, b.latest)

    def test_lazy_bound_matches_scratch(self):
        _g, rec = self._seeded()
        for family in ("sssp", "khop"):
            self._assert_same(rec.temporal(family), self._scratch(rec, family))

    def test_reweight_takes_cone_repropagation_path(self):
        g, rec = self._seeded()
        before = rec.temporal("sssp")
        assert before is not None
        u, v, w = next(iter(g.edges()))
        g.reweight(int(u), int(v), (int(w) % 4) + 1)
        rec.refresh()
        assert rec.temporal_repropagations >= 1
        self._assert_same(rec.temporal("sssp"), self._scratch(rec, "sssp"))

    def test_structural_change_reanalyzes_from_scratch(self):
        g, rec = self._seeded()
        rec.temporal("sssp")
        reprops = rec.temporal_repropagations
        live = g.live_vertices()
        u, v = next(
            (a, b) for a in live for b in live if a != b and not g.has_edge(a, b)
        )
        g.add_edge(u, v, 2)
        rec.refresh()
        assert rec.temporal_repropagations == reprops  # not the cone path
        assert rec.temporal_reanalyses >= 1
        self._assert_same(rec.temporal("sssp"), self._scratch(rec, "sssp"))

    def test_stats_expose_temporal_counters(self):
        g, rec = self._seeded()
        rec.temporal("sssp")
        u, v, w = next(iter(g.edges()))
        g.reweight(int(u), int(v), (int(w) % 4) + 1)
        rec.refresh()
        s = rec.stats()
        assert s["temporal_reanalyses"] >= 1
        assert s["temporal_repropagations"] >= 1
