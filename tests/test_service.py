"""Tests of the serving layer: schema, queue, caches, server, loadgen.

The load-bearing assertions are the differential ones: every answer a
:class:`~repro.service.server.QueryServer` returns — including under
composed fault models — must be byte-identical to a direct solo
``simulate()`` run of the same query.
"""

import numpy as np
import pytest

from repro.circuits import CircuitBuilder
from repro.core.transient import SpikeDrop, SpuriousSpikes, WeightDrift, compose
from repro.core.watchdog import Watchdog
from repro.errors import ReproError, ServiceOverloadedError, ValidationError
from repro.service import (
    CoalescingQueue,
    QueryRequest,
    QueryServer,
    QueryStatus,
    ServiceClient,
    TTLResultCache,
    execute_solo,
    fault_from_spec,
    generate_requests,
    plan_request,
    request_from_dict,
    results_equal,
    run_loadgen,
)
from repro.workloads import gnp_graph, grid_graph


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(20, 0.25, max_length=7, seed=11, ensure_source_reaches=True)


def make_server(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("max_batch", 8)
    kw.setdefault("linger_s", 0.005)
    return QueryServer(**kw)


# ----------------------------------------------------------------- schema #


class TestSchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            QueryRequest(kind="mst", graph_id="g")

    def test_sssp_requires_source(self):
        with pytest.raises(ValidationError):
            QueryRequest(kind="sssp", graph_id="g")

    def test_khop_requires_nonnegative_k(self):
        with pytest.raises(ValidationError):
            QueryRequest(kind="khop", graph_id="g", source=0, k=-1)

    def test_apsp_requires_sources(self):
        with pytest.raises(ValidationError):
            QueryRequest(kind="apsp", graph_id="g", sources=())

    def test_circuit_requires_inputs(self):
        with pytest.raises(ValidationError):
            QueryRequest(kind="circuit", graph_id="c")

    def test_bad_engine_and_deadline(self):
        with pytest.raises(ValidationError):
            QueryRequest(kind="sssp", graph_id="g", source=0, engine="gpu")
        with pytest.raises(ValidationError):
            QueryRequest(kind="sssp", graph_id="g", source=0, deadline_s=0)

    def test_request_ids_unique(self):
        a = QueryRequest(kind="sssp", graph_id="g", source=0)
        b = QueryRequest(kind="sssp", graph_id="g", source=0)
        assert a.request_id != b.request_id

    def test_from_dict_round_trip(self):
        req = request_from_dict(
            {"kind": "khop", "graph_id": "g", "source": 3, "k": 2, "deadline_s": 1.5}
        )
        assert (req.kind, req.source, req.k, req.deadline_s) == ("khop", 3, 2, 1.5)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError):
            request_from_dict({"kind": "sssp", "graph_id": "g", "source": 0, "bogus": 1})

    def test_fault_from_spec_composes(self):
        f = fault_from_spec({"drop_p": 0.1, "spurious_rate": 0.01, "seed": 3})
        assert f is not None and f.fingerprint() is not None
        assert fault_from_spec({}) is None
        with pytest.raises(ValidationError):
            fault_from_spec({"meteor_strike": 1.0})

    def test_cache_params_none_for_uncacheable(self):
        assert QueryRequest(
            kind="sssp", graph_id="g", source=0, record_spikes=True
        ).cache_params() is None
        assert QueryRequest(
            kind="sssp", graph_id="g", source=0, watchdog=Watchdog(window=8)
        ).cache_params() is None
        cacheable = QueryRequest(
            kind="sssp", graph_id="g", source=0, faults=SpikeDrop(0.1, seed=1)
        )
        assert cacheable.cache_params() is not None

    def test_cache_params_distinguish_queries(self):
        a = QueryRequest(kind="sssp", graph_id="g", source=0).cache_params()
        b = QueryRequest(kind="sssp", graph_id="g", source=1).cache_params()
        c = QueryRequest(kind="sssp", graph_id="g", source=0, target=1).cache_params()
        assert len({a, b, c}) == 3


# ------------------------------------------------------------------ queue #


class FakeTicket:
    def __init__(self, n_items=1, deadline=None):
        self.n_items = n_items
        self.deadline = deadline

    def expired(self, now):
        return self.deadline is not None and now >= self.deadline


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCoalescingQueue:
    def test_releases_full_batch_immediately(self):
        clock = FakeClock()
        q = CoalescingQueue(max_batch=3, linger_s=10.0, clock=clock)
        for _ in range(3):
            q.offer(("k",), FakeTicket())
        batch = q.next_batch()
        assert len(batch.tickets) == 3 and q.depth() == 0

    def test_linger_releases_partial_batch(self):
        clock = FakeClock()
        q = CoalescingQueue(max_batch=8, linger_s=1.0, clock=clock)
        q.offer(("k",), FakeTicket())
        clock.t = 1.5  # oldest has lingered past the bound
        batch = q.next_batch()
        assert len(batch.tickets) == 1

    def test_groups_by_key(self):
        clock = FakeClock()
        q = CoalescingQueue(max_batch=2, linger_s=10.0, clock=clock)
        q.offer(("a",), FakeTicket())
        q.offer(("b",), FakeTicket())
        q.offer(("a",), FakeTicket())
        batch = q.next_batch()
        assert batch.key == ("a",) and len(batch.tickets) == 2

    def test_never_splits_a_ticket(self):
        clock = FakeClock()
        q = CoalescingQueue(max_batch=4, linger_s=0.0, clock=clock)
        q.offer(("k",), FakeTicket(n_items=3))
        q.offer(("k",), FakeTicket(n_items=3))
        first = q.next_batch()
        assert [t.n_items for t in first.tickets] == [3]
        second = q.next_batch()
        assert [t.n_items for t in second.tickets] == [3]

    def test_oversized_ticket_dispatches_alone(self):
        clock = FakeClock()
        q = CoalescingQueue(max_batch=2, linger_s=0.0, clock=clock)
        q.offer(("k",), FakeTicket(n_items=5))
        assert q.next_batch().n_items == 5

    def test_backpressure_rejects_with_retry_hint(self):
        q = CoalescingQueue(limit_items=2, linger_s=0.5, clock=FakeClock())
        q.offer(("k",), FakeTicket())
        q.offer(("k",), FakeTicket())
        with pytest.raises(ServiceOverloadedError) as exc:
            q.offer(("k",), FakeTicket())
        assert exc.value.retry_after_s > 0 and exc.value.queue_depth == 2

    def test_deadline_expired_tickets_are_separated(self):
        clock = FakeClock()
        q = CoalescingQueue(max_batch=8, linger_s=5.0, clock=clock)
        q.offer(("k",), FakeTicket(deadline=1.0))
        q.offer(("k",), FakeTicket(deadline=100.0))
        clock.t = 2.0  # first deadline passed; also forces release
        batch = q.next_batch()
        assert len(batch.expired) == 1 and len(batch.tickets) == 1

    def test_close_drains_and_rejects(self):
        clock = FakeClock()
        q = CoalescingQueue(max_batch=8, linger_s=10.0, clock=clock)
        q.offer(("k",), FakeTicket())
        q.close()
        assert len(q.next_batch().tickets) == 1
        assert q.next_batch() is None
        with pytest.raises(ServiceOverloadedError):
            q.offer(("k",), FakeTicket())


# ----------------------------------------------------------- result cache #


class TestTTLResultCache:
    def test_ttl_expiry(self):
        clock = FakeClock()
        c = TTLResultCache(maxsize=4, ttl_s=10.0, clock=clock)
        c.put(("a",), 1)
        assert c.get(("a",)) == 1
        clock.t = 11.0
        assert c.get(("a",)) is None
        assert c.stats()["expirations"] == 1

    def test_lru_eviction_order(self):
        clock = FakeClock()
        c = TTLResultCache(maxsize=2, ttl_s=100.0, clock=clock)
        c.put(("a",), 1)
        c.put(("b",), 2)
        assert c.get(("a",)) == 1  # refresh a -> b is now LRU
        c.put(("c",), 3)
        assert c.get(("b",)) is None and c.get(("a",)) == 1 and c.get(("c",)) == 3
        assert c.stats()["evictions"] == 1

    def test_clear(self):
        c = TTLResultCache(maxsize=4, ttl_s=100.0, clock=FakeClock())
        c.put(("a",), 1)
        c.clear()
        assert len(c) == 0 and c.get(("a",)) is None


# ------------------------------------------------------------- server e2e #


class TestQueryServer:
    def test_requires_start(self, graph):
        srv = make_server()
        srv.register_graph("g", graph)
        with pytest.raises(ReproError):
            srv.submit(QueryRequest(kind="sssp", graph_id="g", source=0))

    def test_unknown_graph_raises_synchronously(self, graph):
        with make_server() as srv:
            with pytest.raises(ValidationError):
                srv.submit(QueryRequest(kind="sssp", graph_id="nope", source=0))

    def test_out_of_range_source_raises_synchronously(self, graph):
        srv = make_server()
        srv.register_graph("g", graph)
        with srv:
            with pytest.raises(ValidationError):
                srv.submit(QueryRequest(kind="sssp", graph_id="g", source=999))

    def test_coalesced_burst_matches_solo(self, graph):
        srv = make_server(result_cache_size=0)
        srv.register_graph("g", graph)
        with srv:
            cli = ServiceClient(srv)
            tickets = [cli.submit_sssp("g", s) for s in range(graph.n)]
            results = [t.result(60) for t in tickets]
        assert all(r.ok for r in results)
        assert any(r.batch_size > 1 for r in results), "nothing coalesced"
        for s, r in enumerate(results):
            solo = execute_solo(
                plan_request(
                    QueryRequest(kind="sssp", graph_id="g", source=s), {"g": graph}, {}
                )
            )
            assert np.array_equal(r.dist, solo["dist"])
            assert r.cost.total_time == solo["cost"].total_time
        stats = srv.stats()
        counters = stats["metrics"]["counters"]
        assert counters["service.batches.coalesced"] >= 1
        assert counters["service.requests.completed"] == graph.n

    def test_khop_and_apsp_match_solo(self, graph):
        srv = make_server(result_cache_size=0)
        srv.register_graph("g", graph)
        with srv:
            cli = ServiceClient(srv)
            rk = cli.khop("g", 0, 3)
            ra = cli.apsp("g", [0, 1, 2])
        solo_k = execute_solo(
            plan_request(
                QueryRequest(kind="khop", graph_id="g", source=0, k=3), {"g": graph}, {}
            )
        )
        solo_a = execute_solo(
            plan_request(
                QueryRequest(kind="apsp", graph_id="g", sources=(0, 1, 2)),
                {"g": graph},
                {},
            )
        )
        assert np.array_equal(rk.dist, solo_k["dist"])
        assert np.array_equal(ra.matrix, solo_a["matrix"])
        assert ra.matrix.shape == (3, graph.n)

    def test_served_identical_under_composed_faults(self, graph):
        """The differential guarantee: byte-identical results with faults on."""

        def faults():
            return compose(
                SpikeDrop(0.08, seed=5),
                SpuriousSpikes(0.02, seed=6),
                WeightDrift(0.05, seed=7),
            )

        srv = make_server(result_cache_size=0)
        srv.register_graph("g", graph)
        with srv:
            cli = ServiceClient(srv)
            tickets = [
                cli.submit_sssp("g", s, faults=faults(), record_spikes=True)
                for s in range(6)
            ]
            results = [t.result(60) for t in tickets]
        for s, r in enumerate(results):
            solo = execute_solo(
                plan_request(
                    QueryRequest(
                        kind="sssp",
                        graph_id="g",
                        source=s,
                        faults=faults(),
                        record_spikes=True,
                    ),
                    {"g": graph},
                    {},
                )
            )
            assert np.array_equal(r.dist, solo["dist"])
            # raster-level identity, tick by tick
            for r0, r1 in zip(r.sims, solo["sims"]):
                assert r0.final_tick == r1.final_tick
                assert np.array_equal(r0.first_spike, r1.first_spike)
                assert np.array_equal(r0.spike_counts, r1.spike_counts)
                assert sorted(r0.spike_events) == sorted(r1.spike_events)
                for t in r0.spike_events:
                    assert np.array_equal(r0.spike_events[t], r1.spike_events[t])

    def test_circuit_queries(self):
        b = CircuitBuilder()
        (x,) = b.input_bits("x", 1)
        (y,) = b.input_bits("y", 1)
        b.output_bits("o", [b.and_gate([x, y])])
        srv = make_server()
        srv.register_circuit("c", b)
        with srv:
            cli = ServiceClient(srv)
            for xv, yv, want in [(0, 0, 0), (1, 0, 0), (1, 1, 1)]:
                r = cli.circuit("c", {"x": xv, "y": yv})
                assert r.ok, r.error
                assert r.outputs["o"] == want

    def test_deadline_timeout_in_queue(self, graph):
        # single worker occupied by a long linger window; deadline shorter
        srv = QueryServer(
            workers=1, max_batch=64, linger_s=0.5, result_cache_size=0
        )
        srv.register_graph("g", graph)
        with srv:
            cli = ServiceClient(srv)
            t = cli.submit_sssp("g", 0, deadline_s=0.02)
            r = t.result(30)
        assert r.status is QueryStatus.TIMEOUT
        assert "deadline" in r.error

    def test_backpressure_surfaces_from_submit(self, graph):
        srv = QueryServer(
            workers=1, max_batch=64, linger_s=10.0, queue_limit=2, result_cache_size=0
        )
        srv.register_graph("g", graph)
        with srv:
            cli = ServiceClient(srv)
            cli.submit_sssp("g", 0)
            cli.submit_sssp("g", 1)
            with pytest.raises(ServiceOverloadedError) as exc:
                cli.submit_sssp("g", 2)
            assert exc.value.retry_after_s > 0
        assert srv.stats()["metrics"]["counters"]["service.requests.rejected"] == 1

    def test_result_cache_hit(self, graph):
        srv = make_server(result_cache_size=32)
        srv.register_graph("g", graph)
        with srv:
            cli = ServiceClient(srv)
            first = cli.sssp("g", 4)
            second = cli.sssp("g", 4)
        assert not first.cached and second.cached
        assert np.array_equal(first.dist, second.dist)
        assert second.request_id != first.request_id
        stats = srv.stats()
        assert stats["result_cache"]["hits"] == 1

    def test_record_spikes_bypasses_result_cache(self, graph):
        srv = make_server(result_cache_size=32)
        srv.register_graph("g", graph)
        with srv:
            cli = ServiceClient(srv)
            a = cli.sssp("g", 4, record_spikes=True)
            b = cli.sssp("g", 4, record_spikes=True)
        assert not a.cached and not b.cached
        assert a.sims[0].spike_events is not None

    def test_stats_exposes_build_cache_and_queue(self, graph):
        srv = make_server()
        srv.register_graph("g", graph)
        with srv:
            ServiceClient(srv).sssp("g", 0)
            stats = srv.stats()
        assert "entries" in stats["build_cache"]
        assert stats["queue_depth"] == 0
        assert stats["graphs"] == ["g"]
        timers = stats["metrics"]["timers"]
        assert "service.latency.total" in timers
        assert "service.latency.queue" in timers

    def test_watchdog_request_served(self, graph):
        srv = make_server(result_cache_size=0)
        srv.register_graph("g", graph)
        with srv:
            r = ServiceClient(srv).sssp("g", 0, watchdog=Watchdog(window=64))
        assert r.ok
        solo = execute_solo(
            plan_request(
                QueryRequest(
                    kind="sssp", graph_id="g", source=0, watchdog=Watchdog(window=64)
                ),
                {"g": graph},
                {},
            )
        )
        assert np.array_equal(r.dist, solo["dist"])

    def test_submit_after_stop_rejected(self, graph):
        srv = make_server()
        srv.register_graph("g", graph)
        srv.start()
        srv.stop()
        with pytest.raises(ReproError):
            srv.submit(QueryRequest(kind="sssp", graph_id="g", source=0))

    def test_stop_drains_pending_work(self, graph):
        srv = QueryServer(workers=1, max_batch=64, linger_s=5.0, result_cache_size=0)
        srv.register_graph("g", graph)
        srv.start()
        cli = ServiceClient(srv)
        tickets = [cli.submit_sssp("g", s) for s in range(4)]
        srv.stop()  # close() drops the linger; batch must still be served
        for t in tickets:
            assert t.result(10).ok


# ---------------------------------------------------------------- loadgen #


class TestLoadgen:
    def test_generate_requests_deterministic(self, graph):
        a = generate_requests({"g": graph}, 30, seed=9)
        b = generate_requests({"g": graph}, 30, seed=9)
        assert [(r.kind, r.source, r.k, r.sources) for r in a] == [
            (r.kind, r.source, r.k, r.sources) for r in b
        ]
        assert {r.kind for r in a} <= {"sssp", "khop", "apsp"}

    def test_generate_requests_validates(self, graph):
        with pytest.raises(ValidationError):
            generate_requests({}, 5)
        with pytest.raises(ValidationError):
            generate_requests({"g": graph}, 5, mix={"mst": 1.0})

    def test_run_loadgen_end_to_end(self, graph):
        small = grid_graph(4, 4, max_length=5, seed=3)
        report = run_loadgen(
            {"g": graph, "grid": small},
            n_requests=24,
            clients=3,
            depth=4,
            workers=1,
            max_batch=8,
            linger_s=0.005,
            seed=1,
        )
        assert report["schema"] == "repro.serving.bench/v1"
        s = report["serving"]
        assert s["ok"] == 24 and s["errors"] == 0
        assert s["batches"] >= 1
        assert report["equality"]["mismatches"] == 0
        assert report["naive"]["throughput_rps"] > 0
        assert report["speedup"] is not None

    def test_results_equal_detects_divergence(self, graph):
        req = QueryRequest(kind="sssp", graph_id="g", source=0)
        solo = execute_solo(plan_request(req, {"g": graph}, {}))
        from repro.service.schema import QueryResult

        ok = QueryResult(
            request_id="x",
            kind="sssp",
            status=QueryStatus.OK,
            dist=solo["dist"],
            cost=solo["cost"],
            sims=solo["sims"],
        )
        assert results_equal(ok, solo)
        bad = QueryResult(
            request_id="x",
            kind="sssp",
            status=QueryStatus.OK,
            dist=solo["dist"] + 1,
            cost=solo["cost"],
        )
        assert not results_equal(bad, solo)
