"""repro.staticcheck: lint rules, mutation coverage, theorem-budget certification.

Three layers of assertions:

1. **Clean bill of health** — every circuit family in :mod:`repro.circuits`
   and every algorithm-built network lints with zero error-severity
   diagnostics (warnings are allowed: ``add_constant`` contains
   intentionally unfireable carry gates for zero constant bits).
2. **Mutation coverage** — each lint rule class is seeded with a violation
   (corrupted compiled arrays or a deliberately broken builder graph) and
   the *exact* diagnostic code must fire.
3. **Certification** — measured neuron/synapse/depth/runtime counts equal
   the closed-form theorem budgets where those are exact, and the full
   library certifies ok.
"""

import numpy as np
import pytest

from repro.circuits.adders import (
    add_constant,
    carry_lookahead_adder,
    ripple_adder,
    siu_adder,
    subtract_one,
)
from repro.circuits.builder import CircuitBuilder
from repro.circuits.comparators import comparator_geq, comparator_gt
from repro.circuits.max_circuits import (
    brute_force_max,
    brute_force_min,
    masked_max,
    masked_min,
    wired_or_max,
    wired_or_min,
)
from repro.circuits.runner import run_circuit
from repro.core.network import Network
from repro.errors import StaticCheckError, ValidationError
from repro.staticcheck import (
    RULES,
    Severity,
    certify_circuit,
    certify_khop,
    certify_library,
    certify_sssp,
    lint_circuit,
    lint_network,
)
from repro.workloads.generators import gnp_graph


def _graph(n=12, p=0.3, seed=3, max_length=5):
    return gnp_graph(n, p, max_length=max_length, seed=seed)


# --------------------------------------------------------------------------- #
# 1. Every library circuit and algorithm network lints clean
# --------------------------------------------------------------------------- #


def _two_number_builder(fn, lam=3):
    b = CircuitBuilder()
    xs = [b.input_bits(f"x{i}", lam) for i in range(3)]
    res = fn(b, xs)
    b.output_bits("out", res.out_bits)
    return b


def _adder_builder(fn, lam=3):
    b = CircuitBuilder()
    a = b.input_bits("a", lam)
    c = b.input_bits("b", lam)
    out = fn(b, a, c)
    b.output_bits("out", out)
    return b


def _masked_builder(fn, lam=3):
    b = CircuitBuilder()
    xs = [b.input_bits(f"x{i}", lam) for i in range(3)]
    valids = b.input_bits("valid", 3)
    res = fn(b, xs, valids)
    b.output_bits("out", res.out_bits)
    return b


def _comparator_builder(fn, lam=3):
    b = CircuitBuilder()
    a = b.input_bits("a", lam)
    c = b.input_bits("b", lam)
    out = fn(b, a, c)
    b.output_bits("out", [out], aligned=False)
    return b


def _add_constant_builder(constant=5, lam=4):
    b = CircuitBuilder()
    bits = b.input_bits("x", lam)
    valid = b.input_bits("valid", 1)[0]
    out, out_valid = add_constant(b, bits, constant, valid)
    b.output_bits("out", out)
    b.output_bits("valid_out", [out_valid])
    return b


def _subtract_one_builder(lam=4):
    b = CircuitBuilder()
    bits = b.input_bits("x", lam)
    valid = b.input_bits("valid", 1)[0]
    out, out_valid = subtract_one(b, bits, valid)
    b.output_bits("out", out)
    b.output_bits("valid_out", [out_valid])
    return b


CIRCUIT_BUILDERS = {
    "wired_or_max": lambda: _two_number_builder(wired_or_max),
    "wired_or_min": lambda: _two_number_builder(wired_or_min),
    "brute_force_max": lambda: _two_number_builder(brute_force_max),
    "brute_force_min": lambda: _two_number_builder(brute_force_min),
    "masked_max": lambda: _masked_builder(masked_max),
    "masked_min": lambda: _masked_builder(masked_min),
    "carry_lookahead_adder": lambda: _adder_builder(carry_lookahead_adder),
    "siu_adder": lambda: _adder_builder(siu_adder),
    "ripple_adder": lambda: _adder_builder(ripple_adder),
    "comparator_geq": lambda: _comparator_builder(comparator_geq),
    "comparator_gt": lambda: _comparator_builder(comparator_gt),
    "add_constant": _add_constant_builder,
    "subtract_one": _subtract_one_builder,
}


@pytest.mark.parametrize("kind", sorted(CIRCUIT_BUILDERS))
def test_library_circuit_lints_clean(kind):
    report = CIRCUIT_BUILDERS[kind]().lint(subject=kind)
    assert report.ok, report.render()
    # feed-forward circuits must also be free of cycle diagnostics
    assert "SC110" not in report.codes()


def test_sssp_network_lints_clean():
    g = _graph()
    from repro.algorithms.sssp_pseudo import sssp_network

    for use_gadgets in (False, True):
        net, node_ids = sssp_network(g, use_gadgets=use_gadgets)
        report = lint_network(
            net.compile(), subject="sssp", entries=[node_ids[0]]
        )
        assert report.ok, report.render()


def test_khop_network_lints_clean():
    g = _graph()
    from repro.algorithms.reach import khop_reach_network

    net, node_ids = khop_reach_network(g)
    report = lint_network(net.compile(), subject="khop", entries=[node_ids[0]])
    assert report.ok, report.render()


def test_khop_gate_level_network_lints_clean():
    # recurrent (clock loop), so no feed-forward expectation and no entries
    from repro.algorithms.khop_pseudo import compile_khop_pseudo_gate_level

    compiled = compile_khop_pseudo_gate_level(_graph(n=8, p=0.3), 0, 3)
    report = lint_network(compiled.net.compile(), subject="khop_gate_level")
    assert report.ok, report.render()
    assert "SC110" in report.skipped  # cycle rule only runs when declared FF


# --------------------------------------------------------------------------- #
# 2. Mutation tests: every rule class detects its seeded violation
# --------------------------------------------------------------------------- #


def _clean_compiled():
    """A small healthy circuit, compiled, private to one test (mutable)."""
    b = _adder_builder(ripple_adder)
    return b, b.net.compile()


def test_mutation_dangling_synapse_sc101():
    _, c = _clean_compiled()
    c.syn_dst[0] = c.n + 5
    report = lint_network(c, subject="mutant")
    assert "SC101" in report.codes()
    assert not report.ok


def test_mutation_bad_delay_sc102():
    _, c = _clean_compiled()
    c.syn_delay[0] = 0
    report = lint_network(c, subject="mutant")
    assert "SC102" in report.codes()
    assert not report.ok


def test_mutation_noninteger_delay_sc102():
    _, c = _clean_compiled()
    import dataclasses

    c = dataclasses.replace(c, syn_delay=c.syn_delay.astype(np.float64))
    c.syn_delay[0] = 1.5
    report = lint_network(c, subject="mutant")
    assert "SC102" in report.codes()


def test_mutation_nonfinite_weight_sc103():
    _, c = _clean_compiled()
    c.syn_weight[0] = np.nan
    report = lint_network(c, subject="mutant")
    assert "SC103" in report.codes()
    assert not report.ok


def test_mutation_duplicate_synapse_sc104():
    net = Network()
    a = net.add_neuron()
    b = net.add_neuron(v_threshold=0.5)
    net.mark_input(a)
    net.add_synapse(a, b, weight=1.0, delay=2)
    net.add_synapse(a, b, weight=1.0, delay=2)  # exact duplicate
    report = lint_network(net.compile(), subject="mutant")
    assert "SC104" in report.codes()
    assert report.ok  # duplicates are a warning, not an error


def test_mutation_cycle_in_feedforward_sc110():
    net = Network()
    a = net.add_neuron(tau=1.0)
    b = net.add_neuron(tau=1.0)
    net.mark_input(a)
    net.add_synapse(a, b)
    net.add_synapse(b, a)  # back-edge
    report = lint_network(net.compile(), subject="mutant", expect_feedforward=True)
    assert "SC110" in report.codes()
    assert not report.ok
    # same network without the feed-forward declaration: rule is skipped
    relaxed = lint_network(net.compile(), subject="mutant")
    assert "SC110" not in relaxed.codes()


def test_mutation_unreachable_output_sc120():
    net = Network()
    a = net.add_neuron()
    _mid = net.add_neuron()
    out = net.add_neuron()
    net.mark_input(a)
    net.mark_output(out)
    net.add_synapse(a, _mid)  # nothing ever reaches `out`
    report = lint_network(net.compile(), subject="mutant")
    assert "SC120" in report.codes()
    assert not report.ok


def test_mutation_unreachable_neuron_sc121():
    net = Network()
    a = net.add_neuron()
    b = net.add_neuron()
    orphan = net.add_neuron()
    other = net.add_neuron()
    net.mark_input(a)
    net.mark_output(b)
    net.add_synapse(a, b)
    net.add_synapse(orphan, other)  # connected to each other, not to entries
    report = lint_network(net.compile(), subject="mutant")
    assert "SC121" in report.codes()
    assert report.ok  # warning severity


def test_mutation_isolated_neuron_sc122():
    net = Network()
    a = net.add_neuron()
    b = net.add_neuron()
    net.add_neuron()  # no synapses, no role
    net.mark_input(a)
    net.mark_output(b)
    net.add_synapse(a, b)
    report = lint_network(net.compile(), subject="mutant")
    assert "SC122" in report.codes()


def test_mutation_dead_output_neuron_sc130_error():
    b, c = _clean_compiled()
    # raise one output gate's threshold beyond any attainable voltage
    out_id = c.outputs[0]
    c.v_threshold[out_id] = 1e9
    entries = [s.nid for grp in b.input_groups.values() for s in grp]
    report = lint_network(c, subject="mutant", entries=entries)
    diags = [d for d in report.diagnostics if d.code == "SC130"]
    assert diags and any(d.severity is Severity.ERROR for d in diags)
    assert not report.ok


def test_mutation_dead_internal_neuron_sc130_warning():
    net = Network()
    a = net.add_neuron()
    # memoryless gate (tau=1) with one weight-1 input: sup voltage 1 < 5
    mid = net.add_neuron(v_threshold=5.0, tau=1.0)
    out = net.add_neuron()
    net.mark_input(a)
    net.mark_output(out)
    net.add_synapse(a, mid, weight=1.0)
    net.add_synapse(a, out, weight=1.0)
    report = lint_network(net.compile(), subject="mutant")
    diags = [d for d in report.diagnostics if d.code == "SC130"]
    assert diags and all(d.severity is Severity.WARNING for d in diags)
    assert report.ok


def test_dead_neuron_analysis_skipped_without_entries():
    net = Network()
    a = net.add_neuron()
    b = net.add_neuron(v_threshold=5.0)
    net.add_synapse(a, b, weight=1.0)
    report = lint_network(net.compile(), subject="no-entries")
    assert "SC130" in report.skipped
    assert "SC130" not in report.codes()


def test_mutation_hot_neuron_sc131():
    _, c = _clean_compiled()
    c.v_reset[1] = 2.0  # above threshold 0.5: pacemaker
    report = lint_network(c, subject="mutant")
    assert "SC131" in report.codes()


def test_mutation_bad_designation_sc140():
    _, c = _clean_compiled()
    c.outputs[0] = c.n + 7
    report = lint_network(c, subject="mutant")
    assert "SC140" in report.codes()
    assert not report.ok


def test_mutation_nonfinite_params_sc141():
    _, c = _clean_compiled()
    c.tau[0] = 2.0
    c.v_threshold[1] = np.inf
    report = lint_network(c, subject="mutant")
    assert "SC141" in report.codes()
    assert not report.ok


def test_tau_zero_integrator_is_not_dead():
    # perfect integrator with positive input accumulates without bound
    net = Network()
    a = net.add_neuron()
    acc = net.add_neuron(v_threshold=100.0, tau=0.0)
    net.mark_input(a)
    net.mark_output(acc)
    net.add_synapse(a, acc, weight=1.0)
    report = lint_network(net.compile(), subject="integrator")
    assert "SC130" not in report.codes()
    assert report.ok


def test_every_rule_class_has_mutation_coverage():
    # the catalog's codes, minus none: each seeded above
    assert set(RULES) == {
        "SC101", "SC102", "SC103", "SC104", "SC110", "SC120",
        "SC121", "SC122", "SC130", "SC131", "SC140", "SC141",
    }


# --------------------------------------------------------------------------- #
# 3. Certifier: measured counts equal the paper's theorem budgets
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("d", [2, 3, 5])
@pytest.mark.parametrize("lam", [2, 4])
def test_wired_or_max_budget_exact(d, lam):
    entry, lint = certify_circuit("wired_or_max", d=d, lam=lam)
    assert entry.ok and lint.ok
    assert entry.budget.exact
    assert entry.neurons == 5 * d * lam + 2 * lam + 1 == entry.budget.neurons
    assert entry.synapses == 10 * d * lam == entry.budget.synapses
    assert entry.depth == 4 * lam + 2  # O(lambda) time, Thm 5.1


@pytest.mark.parametrize("d", [2, 3, 5])
@pytest.mark.parametrize("lam", [2, 4])
def test_brute_force_max_budget_exact(d, lam):
    entry, lint = certify_circuit("brute_force_max", d=d, lam=lam)
    assert entry.ok and lint.ok
    assert entry.neurons == (2 * d + 1) * lam + d * d + 1 == entry.budget.neurons
    assert entry.synapses == d * (2 * d + 1) * lam + 3 * d * (d - 1) // 2
    assert entry.depth == 4  # constant time, Thm 5.2


@pytest.mark.parametrize("lam", [2, 4, 8])
def test_adder_budgets(lam):
    cla, _ = certify_circuit("carry_lookahead_adder", lam=lam)
    assert cla.ok
    assert cla.neurons == 4 * lam + 1 and cla.depth == 2
    ripple, _ = certify_circuit("ripple_adder", lam=lam)
    assert ripple.ok
    assert ripple.neurons == 5 * lam and ripple.depth == lam + 1
    siu, _ = certify_circuit("siu_adder", lam=lam)
    assert siu.ok
    assert siu.neurons == (lam * lam + 13 * lam + 2) // 2 and siu.depth == 4


def test_certify_library_default_grid_passes():
    report = certify_library()
    assert report.ok, report.render()
    assert len(report.entries) >= 20
    doc = report.to_dict()
    assert doc["ok"] is True
    assert all("budget" in e for e in doc["entries"])


def test_certify_library_raise_on_violation():
    from repro.staticcheck import CertificationReport

    report = certify_library({"carry_lookahead_adder": [{"lam": 3}]})
    assert isinstance(report, CertificationReport)
    report.raise_if_failed()  # healthy: no raise
    # forge a violation by shrinking the budget below the measurement
    import dataclasses

    bad = dataclasses.replace(
        report.entries[0],
        violations=("neurons 13 exceeds budget 1",),
    )
    report.entries[0] = bad
    with pytest.raises(StaticCheckError):
        report.raise_if_failed()


def test_certify_sssp_and_khop_budgets():
    g = _graph()
    m_eff = sum(1 for (u, v, _w) in g.edges() if u != v)
    plain, lint = certify_sssp(g)
    assert plain.ok and lint.ok
    assert plain.neurons == g.n == plain.budget.neurons
    assert plain.synapses == m_eff
    assert plain.runtime == (g.n - 1) * g.max_length() + 1  # Thm 3.1 horizon
    gadg, _ = certify_sssp(g, use_gadgets=True)
    assert gadg.ok
    assert gadg.neurons == 2 * g.n
    assert gadg.synapses == m_eff + 3 * g.n
    khop, _ = certify_khop(g, 4)
    assert khop.ok
    assert khop.neurons == g.n and khop.runtime == 4


def test_certify_unknown_kind_raises():
    with pytest.raises(StaticCheckError):
        certify_circuit("nonexistent_circuit")


# --------------------------------------------------------------------------- #
# 4. Integration: verify hooks, service admission, CLI
# --------------------------------------------------------------------------- #


def test_run_circuit_verify_clean_passes():
    b = _adder_builder(carry_lookahead_adder, lam=3)
    out = run_circuit(b, {"a": 3, "b": 4}, verify=True)
    assert out["out"] == 7


def test_run_circuit_verify_rejects_broken_circuit():
    b = _adder_builder(carry_lookahead_adder, lam=3)
    c = b.net.compile()
    c.v_threshold[c.outputs[0]] = 1e9  # provably dead output
    with pytest.raises(StaticCheckError) as exc_info:
        run_circuit(b, {"a": 1, "b": 1}, verify=True)
    assert "SC130" in exc_info.value.report.codes()


def test_driver_verify_hooks():
    from repro.algorithms.reach import spiking_khop_reach
    from repro.algorithms.sssp_pseudo import spiking_sssp_pseudo

    g = _graph()
    res = spiking_sssp_pseudo(g, 0, verify=True)
    assert res.dist[0] == 0
    res = spiking_khop_reach(g, 0, 3, verify=True)
    assert res.dist[0] == 0


def test_service_rejects_broken_resident_circuit():
    from repro.service import QueryServer
    from repro.service.schema import QueryRequest

    b = CircuitBuilder()
    bits = b.input_bits("a", 2)
    gate = b.or_gate(bits)
    b.output_bits("out", [gate], aligned=False)
    b.net.compile().v_threshold[gate.nid] = 1e9  # dead output gate

    with QueryServer(workers=1) as srv:
        srv.register_circuit("bad", b)
        with pytest.raises(StaticCheckError) as exc_info:
            srv.submit(QueryRequest(kind="circuit", graph_id="bad", inputs={"a": 1}))
        assert "SC130" in exc_info.value.report.codes()
        # memoized per resident: second submit re-rejects without re-linting
        with pytest.raises(StaticCheckError):
            srv.submit(QueryRequest(kind="circuit", graph_id="bad", inputs={"a": 0}))
        stats = srv.stats()
        assert stats["metrics"]["counters"]["service.lint.checked"] == 1
        assert stats["metrics"]["counters"]["service.lint.rejections"] == 2
        assert stats["lint"]["residents"] == {"resident circuit 'bad'": False}


def test_service_admission_lint_can_be_disabled():
    from repro.service import QueryServer
    from repro.service.schema import QueryRequest

    b = CircuitBuilder()
    bits = b.input_bits("a", 2)
    gate = b.or_gate(bits)
    b.output_bits("out", [gate], aligned=False)
    b.net.compile().v_threshold[gate.nid] = 1e9

    with QueryServer(workers=1, lint_admission=False) as srv:
        srv.register_circuit("bad", b)
        # admitted; the dead gate simply never fires, output decodes to 0
        result = srv.serve(
            QueryRequest(kind="circuit", graph_id="bad", inputs={"a": 1}), timeout=30
        )
        assert result.ok and result.outputs == {"out": 0}


def test_service_healthy_graph_passes_admission():
    from repro.service import QueryServer
    from repro.service.schema import QueryRequest

    g = _graph()
    with QueryServer(workers=1) as srv:
        srv.register_graph("g", g)
        res = srv.serve(QueryRequest(kind="sssp", graph_id="g", source=0), timeout=30)
        assert res.ok
        assert srv.stats()["lint"]["residents"]["resident 'g' (sssp)"] is True


def test_cli_lint_json(tmp_path, capsys):
    import json

    from repro.cli import main
    from repro.workloads import write_edge_list

    g = _graph()
    gpath = tmp_path / "g.edges"
    write_edge_list(g, str(gpath))
    out = tmp_path / "report.json"
    rc = main(["lint", str(gpath), "--json", "--out", str(out)])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert out.exists()
    kinds = [e["kind"] for e in doc["entries"]]
    assert any(k.startswith("sssp_pseudo[") for k in kinds)
    assert any(k.startswith("khop_reach[") for k in kinds)
    assert "wired_or_max" in kinds


def test_cli_lint_golden_fixtures(capsys):
    from repro.cli import main

    rc = main(["lint", "--golden", "tests/golden", "--no-circuits", "--json"])
    assert rc == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert len(doc["entries"]) == 9  # 3 fixtures x (2 sssp variants + khop)


def test_cli_profile_prints_lint_summary(capsys):
    from repro.cli import main

    rc = main(["profile", "sssp", "--n", "24", "--p", "0.2", "--seed", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "build cache:" in out
    assert "lint: ok" in out


# --------------------------------------------------------------------------- #
# 5. Construction-time validation (satellite)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_network_rejects_nonfinite_weight(bad):
    net = Network()
    a, b = net.add_neuron(), net.add_neuron()
    with pytest.raises(ValidationError):
        net.add_synapse(a, b, weight=bad)


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0, -1, 1.5])
def test_network_rejects_bad_delay(bad):
    net = Network()
    a, b = net.add_neuron(), net.add_neuron()
    with pytest.raises(ValidationError):
        net.add_synapse(a, b, delay=bad)


@pytest.mark.parametrize("field", ["v_reset", "v_threshold"])
@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_neuron_params_reject_nonfinite(field, bad):
    net = Network()
    with pytest.raises(ValidationError):
        net.add_neuron(**{field: bad})


def test_lint_report_serialization_roundtrip():
    b = _adder_builder(ripple_adder)
    report = b.lint(subject="roundtrip")
    doc = report.to_dict()
    assert doc["subject"] == "roundtrip"
    assert doc["ok"] is True
    assert isinstance(doc["diagnostics"], list)
    assert "lint roundtrip: ok" in report.render()
    assert report.summary().startswith("lint: ok")
