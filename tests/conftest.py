"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.workloads import WeightedDigraph, gnp_graph

# CI runs the property suites derandomized so failures reproduce exactly;
# local runs keep Hypothesis's default random exploration.  Select with
# HYPOTHESIS_PROFILE=ci|dev (default dev).
settings.register_profile("ci", derandomize=True, deadline=None, print_blob=True)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def ref_sssp(graph: WeightedDigraph, source: int) -> np.ndarray:
    """Reference SSSP via networkx Dijkstra (−1 for unreachable)."""
    import networkx as nx

    nxg = graph.to_networkx()
    lengths = nx.single_source_dijkstra_path_length(nxg, source, weight="weight")
    out = np.full(graph.n, -1, dtype=np.int64)
    for v, d in lengths.items():
        out[v] = d
    return out


def ref_khop(graph: WeightedDigraph, source: int, k: int) -> np.ndarray:
    """Reference k-hop distances via textbook Bellman–Ford rounds."""
    INF = float("inf")
    d = [INF] * graph.n
    d[source] = 0
    for _ in range(k):
        nd = list(d)
        for u, v, w in graph.edges():
            if u != v and d[u] + w < nd[v]:
                nd[v] = d[u] + w
        d = nd
    return np.asarray([x if x < INF else -1 for x in d], dtype=np.int64)


def ref_alpha(graph: WeightedDigraph, source: int, target: int) -> int:
    """Hop count of a shortest path (minimum hops among optimal paths)."""
    dist = ref_sssp(graph, source)
    if dist[target] < 0:
        return -1
    # BFS-like DP on the shortest-path DAG
    INF = 10**18
    hops = [INF] * graph.n
    hops[source] = 0
    order = sorted(range(graph.n), key=lambda v: (dist[v] < 0, dist[v]))
    for u in order:
        if dist[u] < 0 or hops[u] == INF:
            continue
        heads, lengths = graph.out_edges(u)
        for v, w in zip(heads.tolist(), lengths.tolist()):
            if dist[v] == dist[u] + w and hops[u] + 1 < hops[v]:
                hops[v] = hops[u] + 1
    return hops[target] if hops[target] < INF else -1


@pytest.fixture
def small_graph() -> WeightedDigraph:
    """A fixed 6-vertex graph with known distances from vertex 0.

    Edges: 0->1 (2), 0->2 (7), 1->2 (3), 1->3 (6), 2->3 (1), 3->4 (2),
    2->4 (9), 5 isolated.  Distances from 0: [0, 2, 5, 6, 8, -1].
    """
    return WeightedDigraph(
        6,
        [
            (0, 1, 2),
            (0, 2, 7),
            (1, 2, 3),
            (1, 3, 6),
            (2, 3, 1),
            (3, 4, 2),
            (2, 4, 9),
        ],
    )


SMALL_GRAPH_DIST = np.asarray([0, 2, 5, 6, 8, -1], dtype=np.int64)


@pytest.fixture
def random_graphs():
    """A family of seeded random graphs (reachable from vertex 0)."""
    return [
        gnp_graph(12, 0.25, max_length=5, seed=s, ensure_source_reaches=True)
        for s in range(4)
    ]
