"""Tests of the SNN -> CONGEST reduction (Section 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Network, simulate_dense
from repro.errors import UnsupportedNetworkError, ValidationError
from repro.nga.congest import simulate_snn_in_congest


def chain(delays, **kw):
    net = Network()
    ids = [net.add_neuron(**kw) for _ in range(len(delays) + 1)]
    for i, d in enumerate(delays):
        net.add_synapse(ids[i], ids[i + 1], delay=d)
    return net, ids


class TestReduction:
    def test_one_round_per_tick(self):
        net, ids = chain([1, 1, 1])
        trace = simulate_snn_in_congest(net, [ids[0]], rounds=5)
        assert trace.first_spike.tolist() == [0, 1, 2, 3]
        assert trace.rounds == 5

    def test_delays_handled_by_receiver_timestamping(self):
        net, ids = chain([4, 7])
        trace = simulate_snn_in_congest(net, [ids[0]], rounds=15)
        assert trace.first_spike.tolist() == [0, 4, 11]

    def test_message_count_is_spikes_times_degree(self):
        net = Network()
        hub = net.add_neuron(tau=1.0)
        leaves = [net.add_neuron() for _ in range(5)]
        for leaf in leaves:
            net.add_synapse(hub, leaf, delay=1)
        trace = simulate_snn_in_congest(net, [hub], rounds=3)
        assert trace.messages == 5  # one bit per out-link per spike

    def test_single_bit_congestion(self):
        net, ids = chain([1])
        trace = simulate_snn_in_congest(net, [ids[0]], rounds=3)
        assert trace.max_link_bits == 1

    def test_pacemaker_rejected(self):
        net = Network()
        net.add_neuron(v_reset=5.0, v_threshold=0.5)
        with pytest.raises(UnsupportedNetworkError):
            simulate_snn_in_congest(net, [], rounds=3)

    def test_validation(self):
        net, ids = chain([1])
        with pytest.raises(ValidationError):
            simulate_snn_in_congest(net, [ids[0]], rounds=-1)
        with pytest.raises(ValidationError):
            simulate_snn_in_congest(net, [99], rounds=3)


@st.composite
def random_networks(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    net = Network()
    for _ in range(n):
        net.add_neuron(
            v_threshold=draw(st.sampled_from([0.5, 1.5])),
            tau=draw(st.sampled_from([0.0, 1.0])),
            one_shot=draw(st.booleans()),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        net.add_synapse(
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            weight=draw(st.sampled_from([-1.0, 1.0])),
            delay=draw(st.integers(min_value=1, max_value=4)),
        )
    stim = [draw(st.integers(min_value=0, max_value=n - 1))]
    return net, stim


@given(random_networks())
@settings(max_examples=50, deadline=None)
def test_congest_matches_native_engine(case):
    """The reduction is exact: same spike trains as the dense engine."""
    net, stim = case
    rounds = 25
    trace = simulate_snn_in_congest(net, stim, rounds=rounds)
    native = simulate_dense(net, stim, max_steps=rounds, stop_when_quiescent=False)
    assert trace.first_spike.tolist() == native.first_spike.tolist()
    assert trace.spike_counts.tolist() == native.spike_counts.tolist()
