"""Tests of the tidal-flow max-flow module (the Conclusions' future-work
target) against networkx and the Edmonds–Karp baseline."""

import numpy as np
import pytest

from repro.algorithms.flow import edmonds_karp, tidal_flow
from repro.errors import GraphError, ValidationError
from repro.workloads import WeightedDigraph, gnp_graph, layered_dag


def nx_max_flow(g, s, t):
    import networkx as nx

    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(g.n))
    for u, v, c in g.edges():
        if nxg.has_edge(u, v):
            nxg[u][v]["capacity"] += c
        else:
            nxg.add_edge(u, v, capacity=c)
    value, _ = nx.maximum_flow(nxg, s, t)
    return value


def check_valid_flow(g, result, s, t):
    """Capacity and conservation checks for the reported edge flows."""
    flow = result.edge_flow
    assert (flow >= 0).all()
    assert (flow <= g.lengths).all()
    balance = np.zeros(g.n, dtype=np.int64)
    for i in range(g.m):
        balance[g.tails[i]] -= flow[i]
        balance[g.heads[i]] += flow[i]
    assert balance[s] == -result.flow_value
    assert balance[t] == result.flow_value
    inner = np.delete(balance, [s, t])
    assert (inner == 0).all()


DIAMOND = WeightedDigraph(
    4, [(0, 1, 3), (0, 2, 2), (1, 3, 2), (2, 3, 3), (1, 2, 1)]
)


class TestTidalFlow:
    def test_diamond_value(self):
        r = tidal_flow(DIAMOND, 0, 3)
        assert r.flow_value == 5
        check_valid_flow(DIAMOND, r, 0, 3)

    def test_single_edge(self):
        g = WeightedDigraph(2, [(0, 1, 7)])
        assert tidal_flow(g, 0, 1).flow_value == 7

    def test_disconnected_sink(self):
        g = WeightedDigraph(3, [(0, 1, 5)])
        r = tidal_flow(g, 0, 2)
        assert r.flow_value == 0
        assert r.iterations == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_random(self, seed):
        g = gnp_graph(12, 0.3, max_length=9, seed=seed)
        want = nx_max_flow(g, 0, g.n - 1)
        r = tidal_flow(g, 0, g.n - 1)
        assert r.flow_value == want, seed
        check_valid_flow(g, r, 0, g.n - 1)

    def test_matches_edmonds_karp_on_dag(self):
        g = layered_dag(4, 3, max_length=6, seed=2, density=0.8)
        sink = g.n - 1
        assert tidal_flow(g, 0, sink).flow_value == edmonds_karp(g, 0, sink).flow_value

    def test_parallel_edges(self):
        g = WeightedDigraph(2, [(0, 1, 3), (0, 1, 4)])
        assert tidal_flow(g, 0, 1).flow_value == 7

    def test_backflow_cancellation_needed(self):
        # classic case where a naive greedy needs the residual back-arc
        g = WeightedDigraph(
            4, [(0, 1, 1), (0, 2, 1), (1, 2, 1), (1, 3, 1), (2, 3, 1)]
        )
        assert tidal_flow(g, 0, 3).flow_value == 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            tidal_flow(DIAMOND, 0, 0)
        with pytest.raises(ValidationError):
            tidal_flow(DIAMOND, 0, 9)
        with pytest.raises(ValidationError):
            tidal_flow(DIAMOND, 0, 3, levels="psychic")
        loopy = WeightedDigraph(2, [(0, 0, 1), (0, 1, 1)])
        with pytest.raises(GraphError):
            tidal_flow(loopy, 0, 1)


class TestSpikingLevels:
    @pytest.mark.parametrize("seed", range(4))
    def test_spiking_oracle_same_flow(self, seed):
        g = gnp_graph(10, 0.35, max_length=5, seed=100 + seed)
        bfs = tidal_flow(g, 0, g.n - 1, levels="bfs")
        spk = tidal_flow(g, 0, g.n - 1, levels="spiking")
        assert bfs.flow_value == spk.flow_value
        check_valid_flow(g, spk, 0, g.n - 1)

    def test_spiking_cost_accumulates_per_sweep(self):
        g = gnp_graph(10, 0.4, max_length=5, seed=3)
        r = tidal_flow(g, 0, g.n - 1, levels="spiking")
        assert r.spiking_cost is not None
        # one level sweep per iteration plus the final failed sweep
        assert r.spiking_cost.extras["level_sweeps"] == r.iterations + 1
        assert r.spiking_cost.spike_count > 0

    def test_bfs_oracle_reports_no_spiking_cost(self):
        r = tidal_flow(DIAMOND, 0, 3, levels="bfs")
        assert r.spiking_cost is None


class TestEdmondsKarp:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, seed):
        g = gnp_graph(11, 0.3, max_length=8, seed=200 + seed)
        want = nx_max_flow(g, 0, g.n - 1)
        r = edmonds_karp(g, 0, g.n - 1)
        assert r.flow_value == want
        check_valid_flow(g, r, 0, g.n - 1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            edmonds_karp(DIAMOND, 2, 2)


class TestMaxFlowMinCut:
    """Property test: the value of the computed flow equals the capacity of
    the cut induced by the final residual reachability — max-flow/min-cut
    certifies optimality without an external oracle."""

    @pytest.mark.parametrize("algo", ["tidal", "ek"])
    def test_mincut_certificate(self, algo):
        from collections import deque

        for seed in range(10):
            g = gnp_graph(10, 0.35, max_length=7, seed=300 + seed)
            s, t = 0, g.n - 1
            r = (tidal_flow if algo == "tidal" else edmonds_karp)(g, s, t)
            # residual capacities from the reported flow
            res = {}
            for i in range(g.m):
                u, v = int(g.tails[i]), int(g.heads[i])
                res[(u, v)] = res.get((u, v), 0) + int(g.lengths[i] - r.edge_flow[i])
                res[(v, u)] = res.get((v, u), 0) + int(r.edge_flow[i])
            # BFS in the residual graph from s
            seen = {s}
            queue = deque([s])
            while queue:
                u = queue.popleft()
                for (a, b), c in res.items():
                    if a == u and c > 0 and b not in seen:
                        seen.add(b)
                        queue.append(b)
            assert t not in seen  # the flow saturates some s-t cut
            cut_capacity = sum(
                int(g.lengths[i])
                for i in range(g.m)
                if int(g.tails[i]) in seen and int(g.heads[i]) not in seen
            )
            assert cut_capacity == r.flow_value, (algo, seed)


class TestBottleneckWorkload:
    def test_spiking_levels_on_bottleneck_network(self):
        from repro.workloads import bottleneck_flow_network

        g = bottleneck_flow_network(3, 4, max_capacity=8, bottleneck=3, seed=1)
        r = tidal_flow(g, 0, g.n - 1, levels="spiking")
        assert r.flow_value == 4 * 3
