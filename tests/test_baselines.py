"""Tests of the conventional baselines and their operation counters."""

import numpy as np
import pytest

from repro.baselines import OpCounter, bellman_ford_khop, dijkstra
from repro.errors import ValidationError
from repro.workloads import gnp_graph, path_graph, star_graph
from tests.conftest import SMALL_GRAPH_DIST, ref_khop, ref_sssp


class TestDijkstra:
    def test_small_graph(self, small_graph):
        dist, _ = dijkstra(small_graph, 0)
        assert np.array_equal(dist, SMALL_GRAPH_DIST)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = gnp_graph(20, 0.2, max_length=7, seed=seed)
        dist, _ = dijkstra(g, 0)
        assert np.array_equal(dist, ref_sssp(g, 0))

    def test_early_exit_at_target(self, small_graph):
        dist, ops_t = dijkstra(small_graph, 0, target=1)
        assert dist[1] == 2
        _, ops_full = dijkstra(small_graph, 0)
        assert ops_t.total < ops_full.total

    def test_op_counts_scale_with_edges(self):
        small = gnp_graph(20, 0.1, max_length=4, seed=1)
        big = gnp_graph(20, 0.6, max_length=4, seed=1)
        _, ops_s = dijkstra(small, 0)
        _, ops_b = dijkstra(big, 0)
        assert ops_b.relaxations > ops_s.relaxations
        assert ops_b.relaxations >= big.m // 2  # most edges touched

    def test_heap_ops_balanced(self, small_graph):
        _, ops = dijkstra(small_graph, 0)
        assert ops.heap_pops == ops.heap_pushes  # heap fully drained

    def test_source_validation(self, small_graph):
        with pytest.raises(ValidationError):
            dijkstra(small_graph, 9)


class TestBellmanFord:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [0, 1, 3, 6])
    def test_matches_reference(self, seed, k):
        g = gnp_graph(15, 0.25, max_length=5, seed=seed)
        dist, _ = bellman_ford_khop(g, 0, k)
        assert np.array_equal(dist, ref_khop(g, 0, k))

    def test_relaxations_exactly_k_times_m(self):
        g = gnp_graph(12, 0.4, max_length=4, seed=3)
        k = 5
        _, ops = bellman_ford_khop(g, 0, k)
        assert ops.relaxations == k * g.m  # the O(km) schedule

    def test_early_exit_reduces_rounds(self):
        g = path_graph(4, max_length=2, seed=0)
        _, strict = bellman_ford_khop(g, 0, 50)
        _, early = bellman_ford_khop(g, 0, 50, early_exit=True)
        assert early.relaxations < strict.relaxations
        assert early.relaxations == 4 * g.m  # 3 improving rounds + 1 empty

    def test_star_one_round_suffices(self):
        g = star_graph(8, max_length=3, seed=1)
        dist, _ = bellman_ford_khop(g, 0, 1)
        assert (dist[1:] >= 1).all()

    def test_validation(self, small_graph):
        with pytest.raises(ValidationError):
            bellman_ford_khop(small_graph, 0, -1)
        with pytest.raises(ValidationError):
            bellman_ford_khop(small_graph, -5, 1)


class TestOpCounter:
    def test_total_sums_fields(self):
        ops = OpCounter(comparisons=1, relaxations=2, heap_pushes=3,
                        heap_pops=4, array_reads=5, array_writes=6)
        assert ops.total == 21

    def test_default_zero(self):
        assert OpCounter().total == 0
