"""Tests of the resilience layer: supervision, breakers, retries, chaos.

The load-bearing assertions mirror the chaos harness's acceptance
criteria: a worker killed mid-batch at a fixed seed loses zero tickets,
restarts exactly once, and every recovered answer is byte-identical to a
solo run.  Everything else — breaker transitions, retry schedules, the
degradation ladder, stale-cache serving — is pinned with deterministic
clocks or scripted servers so no assertion rides on thread timing.
"""

import time

import numpy as np
import pytest

from repro.errors import (
    RETRYABLE_ERROR_CODES,
    CircuitOpenError,
    ServiceOverloadedError,
    SimulationError,
    ValidationError,
    classify_exception,
)
from repro.service import (
    SCENARIOS,
    BreakerPolicy,
    ChaosPolicy,
    CircuitBreaker,
    CoalescingQueue,
    InjectedWorkerCrash,
    QueryRequest,
    QueryResult,
    QueryServer,
    QueryStatus,
    QueryTicket,
    RetryPolicy,
    ServiceClient,
    TTLResultCache,
    run_chaos,
)
from repro.workloads import gnp_graph

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(20, 0.25, max_length=7, seed=11, ensure_source_reaches=True)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


def _req(kind="sssp", graph_id="g", **kw):
    kw.setdefault("source", 0)
    return QueryRequest(kind=kind, graph_id=graph_id, **kw)


def _done_ticket(request, *, status=QueryStatus.OK, error_code=None):
    t = QueryTicket(request, None, admitted_at=0.0)
    t.complete(
        QueryResult(
            request_id=request.request_id,
            kind=request.kind,
            status=status,
            error="scripted failure" if status is not QueryStatus.OK else None,
            error_code=error_code,
        )
    )
    return t


class ScriptedServer:
    """A stand-in server whose submit() plays back a list of outcomes.

    Each outcome is either an exception instance (raised) or a callable
    taking the request and returning a ticket.
    """

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.submits = 0

    def submit(self, request):
        self.submits += 1
        nxt = self.outcomes.pop(0)
        if isinstance(nxt, BaseException):
            raise nxt
        return nxt(request)


# ----------------------------------------------------------- error codes #


class TestErrorTaxonomy:
    def test_classification_table(self):
        assert classify_exception(ServiceOverloadedError("full")) == ("OVERLOADED", True)
        assert classify_exception(CircuitOpenError("open")) == ("BREAKER_OPEN", True)
        assert classify_exception(TimeoutError("slow")) == ("TIMEOUT", True)
        assert classify_exception(ValidationError("bad")) == ("INVALID", False)
        assert classify_exception(SimulationError("sim")) == ("SIMULATION", False)
        assert classify_exception(RuntimeError("??")) == ("INTERNAL", False)

    def test_retryable_codes_are_transient_only(self):
        assert "INVALID" not in RETRYABLE_ERROR_CODES
        assert "SIMULATION" not in RETRYABLE_ERROR_CODES
        assert {"OVERLOADED", "BREAKER_OPEN", "WORKER_CRASH", "TIMEOUT"} <= RETRYABLE_ERROR_CODES

    def test_queue_timeout_result_is_structured(self, graph):
        srv = QueryServer(workers=1, max_batch=64, linger_s=0.5, result_cache_size=0)
        srv.register_graph("g", graph)
        with srv:
            r = srv.submit(_req(deadline_s=0.02)).result(30)
        assert r.status is QueryStatus.TIMEOUT
        assert r.error_code == "TIMEOUT"
        assert r.error_type == "TimeoutError"
        doc = r.to_dict()
        assert doc["error_code"] == "TIMEOUT" and doc["error_type"] == "TimeoutError"


# ----------------------------------------------------------- result cache #


class TestResultCacheStaleness:
    def test_amortized_purge_on_put(self):
        clock = FakeClock()
        cache = TTLResultCache(maxsize=64, ttl_s=1.0, clock=clock)
        for i in range(4):
            cache.put(("old", i), i)
        clock.t = 5.0  # all four are far past TTL (no grace)
        cache.put(("new",), 99)
        stats = cache.stats()
        assert stats["entries"] == 1  # the purge evicted the dead entries
        assert stats["purges"] == 4
        assert cache.get(("new",)) == 99

    def test_get_never_returns_expired_within_grace(self):
        clock = FakeClock()
        cache = TTLResultCache(maxsize=8, ttl_s=1.0, stale_grace_s=10.0, clock=clock)
        cache.put(("k",), "v")
        clock.t = 2.0  # expired, inside grace
        assert cache.get(("k",)) is None
        assert cache.get_stale(("k",)) == "v"
        assert cache.stats()["stale_hits"] == 1

    def test_stale_entries_die_past_grace(self):
        clock = FakeClock()
        cache = TTLResultCache(maxsize=8, ttl_s=1.0, stale_grace_s=2.0, clock=clock)
        cache.put(("k",), "v")
        clock.t = 4.0  # past ttl + grace
        assert cache.get_stale(("k",)) is None
        assert len(cache) == 0

    def test_fresh_entry_via_get_stale_counts_as_hit(self):
        clock = FakeClock()
        cache = TTLResultCache(maxsize=8, ttl_s=5.0, stale_grace_s=2.0, clock=clock)
        cache.put(("k",), "v")
        assert cache.get_stale(("k",)) == "v"
        assert cache.stats()["hits"] == 1 and cache.stats()["stale_hits"] == 0

    def test_stale_grace_validated(self):
        with pytest.raises(ValidationError):
            TTLResultCache(stale_grace_s=-1.0)


# ----------------------------------------------------------------- queue #


class _FakeTicket:
    def __init__(self, n_items=1):
        self.n_items = n_items
        self.deadline = None

    def expired(self, now):
        return False


class TestQueueRequeue:
    def test_requeue_goes_to_front_and_releases_immediately(self):
        clock = FakeClock()
        q = CoalescingQueue(limit_items=4, max_batch=8, linger_s=5.0, clock=clock)
        first, recovered = _FakeTicket(), _FakeTicket()
        q.offer(("k",), first)
        q.requeue(("k",), recovered)
        # the requeued ticket's backdated admit time forces release despite
        # the long linger, and it sits ahead of the earlier offer
        batch = q.next_batch()
        assert batch.tickets[0] is recovered
        assert batch.tickets[1] is first

    def test_requeue_bypasses_limit_and_close(self):
        q = CoalescingQueue(limit_items=1, max_batch=8, linger_s=0.0)
        q.offer(("k",), _FakeTicket())
        with pytest.raises(ServiceOverloadedError):
            q.offer(("k",), _FakeTicket())
        q.close()
        q.requeue(("k",), _FakeTicket())  # neither limit nor closed rejects
        assert q.depth() == 2
        assert not q.drained()
        batch = q.next_batch()
        assert len(batch.tickets) == 2
        assert q.next_batch() is None
        assert q.drained()


# ---------------------------------------------------------------- ticket #


class TestTicketClaim:
    def test_completion_is_exactly_once(self):
        t = QueryTicket(_req(), None, admitted_at=0.0)
        winner = QueryResult(request_id="a", kind="sssp", status=QueryStatus.OK)
        loser = QueryResult(request_id="a", kind="sssp", status=QueryStatus.ERROR)
        assert t.complete(winner) is True
        assert t.complete(loser) is False
        assert t.result(0) is winner


# --------------------------------------------------------------- breaker #


class TestCircuitBreaker:
    def make(self, **kw):
        clock = FakeClock()
        kw.setdefault("window", 8)
        kw.setdefault("min_samples", 4)
        kw.setdefault("error_threshold", 0.5)
        kw.setdefault("open_s", 1.0)
        kw.setdefault("half_open_trials", 2)
        return CircuitBreaker(BreakerPolicy(**kw), clock=clock), clock

    def test_opens_at_threshold_with_min_samples(self):
        b, _ = self.make()
        b.record(False)
        b.record(False)
        b.record(False)
        assert b.state == "closed"  # below min_samples despite 100% errors
        b.record(False)
        assert b.state == "open"
        assert not b.allow()
        assert b.opens == 1

    def test_half_open_probes_then_closes(self):
        b, clock = self.make()
        for _ in range(4):
            b.record(False)
        assert b.state == "open"
        assert 0 < b.retry_after_s() <= 1.0
        clock.t = 1.5
        assert b.state == "half_open"
        assert b.allow() and b.allow()  # the two probe slots
        assert not b.allow()  # no third probe
        b.record(True)
        b.record(True)
        assert b.state == "closed"
        assert b.snapshot()["samples"] == 0  # window reset on close

    def test_half_open_failure_reopens(self):
        b, clock = self.make()
        for _ in range(4):
            b.record(False)
        clock.t = 1.5
        assert b.allow()
        b.record(False)
        assert b.state == "open"
        assert b.opens == 2
        assert b.retry_after_s() > 0

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            BreakerPolicy(window=0)
        with pytest.raises(ValidationError):
            BreakerPolicy(error_threshold=0.0)
        with pytest.raises(ValidationError):
            BreakerPolicy(open_s=0.0)

    def test_server_sheds_when_breaker_open(self, graph):
        srv = QueryServer(workers=1, result_cache_size=0)
        srv.register_graph("g", graph)
        with srv:
            # trip the (sssp, g) family directly: 8 failures >= min_samples
            breaker = srv._breaker_for("sssp", "g")
            for _ in range(8):
                breaker.record(False)
            with pytest.raises(CircuitOpenError) as exc:
                srv.submit(_req())
            assert exc.value.kind == "sssp" and exc.value.graph_id == "g"
            assert exc.value.retry_after_s > 0
            assert classify_exception(exc.value) == ("BREAKER_OPEN", True)
            # an unrelated family is unaffected
            assert srv.submit(_req(kind="khop", k=4, source=1)).result(30).ok
        stats = srv.stats()
        assert stats["breakers"]["sssp:g"]["state"] == "open"
        assert stats["breakers"]["sssp:g"]["opens"] == 1
        counters = stats["metrics"]["counters"]
        assert counters["service.breaker.rejections"] == 1


# ----------------------------------------------------------------- retry #


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        p = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.5, jitter=0.2, seed=7)
        again = RetryPolicy(base_backoff_s=0.1, max_backoff_s=0.5, jitter=0.2, seed=7)
        for attempt in range(1, 8):
            assert p.backoff_s(attempt) == again.backoff_s(attempt)
            assert p.backoff_s(attempt) <= 0.5 * 1.2
        # exponential growth before the cap (jitter bounded by 20%)
        assert p.backoff_s(2) >= 0.2 * 0.8
        assert p.backoff_s(1) <= 0.1 * 1.2

    def test_backoff_never_undercuts_server_hint(self):
        p = RetryPolicy(base_backoff_s=0.001, jitter=0.5, seed=3)
        assert p.backoff_s(1, hint_s=0.25) >= 0.25

    def test_should_retry_gating(self):
        p = RetryPolicy(max_attempts=3, budget_s=10.0)
        ok = dict(attempt=1, elapsed_s=0.0, error_code="OVERLOADED", idempotent=True)
        assert p.should_retry(**ok)
        assert not p.should_retry(**{**ok, "idempotent": False})
        assert not p.should_retry(**{**ok, "error_code": "INVALID"})
        assert not p.should_retry(**{**ok, "error_code": None})
        assert not p.should_retry(**{**ok, "attempt": 3})
        assert not p.should_retry(**{**ok, "elapsed_s": 10.0})

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            RetryPolicy(budget_s=0.0)


class TestClientRetry:
    def fast_client(self, server, **kw):
        kw.setdefault(
            "retry", RetryPolicy(max_attempts=5, base_backoff_s=0.0, max_backoff_s=0.0)
        )
        return ServiceClient(server, timeout=30.0, sleep=lambda s: None, **kw)

    def test_retries_through_overload(self):
        req = _req()
        stub = ScriptedServer(
            [
                ServiceOverloadedError("full", retry_after_s=0.001),
                ServiceOverloadedError("full", retry_after_s=0.001),
                _done_ticket,
            ]
        )
        cli = self.fast_client(stub)
        assert cli.call(req).ok
        assert cli.stats["retries"] == 2
        assert cli.stats["attempts"] == 3

    def test_raises_when_budget_exhausted(self):
        stub = ScriptedServer([ServiceOverloadedError("full") for _ in range(9)])
        cli = self.fast_client(stub, retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0))
        with pytest.raises(ServiceOverloadedError):
            cli.call(_req())
        assert stub.submits == 2

    def test_retries_retryable_error_result(self):
        stub = ScriptedServer(
            [
                lambda r: _done_ticket(r, status=QueryStatus.ERROR, error_code="WORKER_CRASH"),
                _done_ticket,
            ]
        )
        cli = self.fast_client(stub)
        assert cli.call(_req()).ok
        assert cli.stats["retries"] == 1

    def test_permanent_error_returned_without_retry(self):
        stub = ScriptedServer(
            [lambda r: _done_ticket(r, status=QueryStatus.ERROR, error_code="INVALID")]
        )
        cli = self.fast_client(stub)
        r = cli.call(_req())
        assert r.status is QueryStatus.ERROR
        assert stub.submits == 1 and cli.stats["retries"] == 0

    def test_no_policy_means_single_shot(self):
        stub = ScriptedServer([ServiceOverloadedError("full")])
        cli = ServiceClient(stub, retry=None)
        with pytest.raises(ServiceOverloadedError):
            cli.call(_req())
        assert stub.submits == 1

    def test_end_to_end_retry_against_real_backpressure(self, graph):
        srv = QueryServer(
            workers=1, max_batch=64, linger_s=0.02, queue_limit=2, result_cache_size=0
        )
        srv.register_graph("g", graph)
        with srv:
            cli = ServiceClient(
                srv,
                timeout=30.0,
                retry=RetryPolicy(max_attempts=8, base_backoff_s=0.01, seed=1),
            )
            results = [cli.sssp("g", s % graph.n) for s in range(6)]
        assert all(r.ok for r in results)


class TestHedging:
    def test_hedge_wins_when_primary_stalls(self):
        req = _req()
        stuck = QueryTicket(req, None, admitted_at=0.0)  # never completes
        stub = ScriptedServer([lambda r: stuck, _done_ticket])
        cli = ServiceClient(stub, timeout=5.0, hedge_after_s=0.005)
        r = cli.call(req)
        assert r.ok
        assert cli.stats["hedges"] == 1
        assert cli.stats["hedge_wins"] == 1

    def test_no_hedge_when_primary_is_fast(self):
        stub = ScriptedServer([_done_ticket])
        cli = ServiceClient(stub, timeout=5.0, hedge_after_s=0.5)
        assert cli.call(_req()).ok
        assert cli.stats["hedges"] == 0

    def test_hedge_rejection_falls_back_to_primary(self, graph):
        req = _req()
        slow = QueryTicket(req, None, admitted_at=0.0)
        stub = ScriptedServer([lambda r: slow, ServiceOverloadedError("full")])

        def complete_soon():
            slow.complete(
                QueryResult(request_id=req.request_id, kind="sssp", status=QueryStatus.OK)
            )

        import threading

        timer = threading.Timer(0.05, complete_soon)
        timer.start()
        cli = ServiceClient(stub, timeout=5.0, hedge_after_s=0.005)
        assert cli.call(req).ok
        timer.join()


# ------------------------------------------------------------ chaos unit #


class TestChaosPolicy:
    def test_decisions_are_pure_functions_of_seq(self):
        p = ChaosPolicy(seed=3, crash_p=0.5, slow_p=0.5, slow_s=0.1, clock_skew_s=0.02)
        q = ChaosPolicy(seed=3, crash_p=0.5, slow_p=0.5, slow_s=0.1, clock_skew_s=0.02)
        for seq in range(1, 50):
            assert p.crash(seq) == q.crash(seq)
            assert p.slow_s_for(seq) == q.slow_s_for(seq)
            assert abs(p.skew_s(seq)) <= 0.02
        other = ChaosPolicy(seed=4, crash_p=0.5)
        assert any(p.crash(s) != other.crash(s) for s in range(1, 200))

    def test_explicit_batches_always_fire(self):
        p = ChaosPolicy(crash_batches=(2,), slow_batches=(3,), slow_s=0.25)
        assert p.crash(2) and not p.crash(1)
        assert p.slow_s_for(3) == 0.25 and p.slow_s_for(2) == 0.0
        assert p.any_active()
        assert not ChaosPolicy().any_active()

    def test_injected_crash_bypasses_exception_guards(self):
        # the dispatch path's `except Exception` must never swallow it
        assert issubclass(InjectedWorkerCrash, BaseException)
        assert not issubclass(InjectedWorkerCrash, Exception)

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            ChaosPolicy(crash_p=1.5)
        with pytest.raises(ValidationError):
            ChaosPolicy(slow_s=-1.0)


# ----------------------------------------------------------- supervision #


class TestSupervision:
    def test_worker_crash_acceptance(self):
        """The PR's acceptance scenario: kill 1 of 4 workers mid-batch."""
        report = run_chaos("worker-crash", n_requests=32, seed=0)
        out, sup = report["outcome"], report["supervisor"]
        assert out["lost"] == 0
        assert out["completed"] == 32
        assert out["statuses"] == {"ok": 32}
        assert sup["crashes"] == 1
        assert sup["restarts"] == 1
        assert sup["requeued"] >= 1
        assert report["equality"]["mismatches"] == 0
        assert report["schema"] == "repro.chaos.bench/v1"

    def test_chaos_report_is_deterministic(self):
        a = run_chaos("worker-crash", n_requests=24, seed=5)
        b = run_chaos("worker-crash", n_requests=24, seed=5)
        keys = ("crashes", "restarts", "wedged", "requeued")
        assert {k: a["supervisor"][k] for k in keys} == {
            k: b["supervisor"][k] for k in keys
        }
        assert a["outcome"]["statuses"] == b["outcome"]["statuses"]

    def test_wedged_worker_recovery(self):
        report = run_chaos("wedged-worker", n_requests=16, seed=0)
        out, sup = report["outcome"], report["supervisor"]
        assert out["lost"] == 0
        assert sup["wedged"] == 1
        assert sup["restarts"] == 1
        assert report["equality"]["mismatches"] == 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValidationError):
            run_chaos("nonexistent")

    def test_scenarios_have_descriptions(self):
        for name, spec in SCENARIOS.items():
            assert spec["description"], name
            assert spec["workers"] >= 1, name

    def test_supervisor_stats_shape(self, graph):
        srv = QueryServer(workers=2, result_cache_size=0)
        srv.register_graph("g", graph)
        with srv:
            assert srv.submit(_req()).result(30).ok
            sup = srv.stats()["supervisor"]
        assert sup["enabled"] is True
        assert sup["crashes"] == 0 and sup["restarts"] == 0
        assert len(sup["workers"]) == 2
        assert all(w["restarts"] == 0 for w in sup["workers"])

    def test_stop_drains_through_a_crash(self, graph):
        """Satellite (c) under fault: no ticket.result() may hang after stop."""
        srv = QueryServer(
            workers=2,
            max_batch=4,
            linger_s=0.001,
            queue_limit=4096,
            result_cache_size=0,
            chaos=ChaosPolicy(crash_batches=(1,)),
        )
        srv.register_graph("g", graph)
        srv.start()
        tickets = [srv.submit(_req(source=s % graph.n)) for s in range(8)]
        srv.stop()
        results = [t.result(10) for t in tickets]  # raises TimeoutError on a hang
        assert all(r.ok for r in results)
        assert srv.stats()["supervisor"]["crashes"] == 1

    def test_stop_drains_without_supervision(self, graph):
        srv = QueryServer(
            workers=1, max_batch=64, linger_s=5.0, result_cache_size=0, supervise=False
        )
        srv.register_graph("g", graph)
        srv.start()
        tickets = [srv.submit(_req(source=s)) for s in range(4)]
        srv.stop()
        assert all(t.result(10).ok for t in tickets)

    def test_recovered_results_match_solo(self, graph):
        """Byte-identical recovery, asserted directly on a crashing server."""
        from repro.service import execute_solo, plan_request, results_equal

        srv = QueryServer(
            workers=2,
            max_batch=4,
            linger_s=0.001,
            queue_limit=4096,
            result_cache_size=0,
            chaos=ChaosPolicy(crash_batches=(2,)),
        )
        srv.register_graph("g", graph)
        requests = [_req(source=s % graph.n) for s in range(12)]
        with srv:
            results = [srv.submit(r).result(30) for r in requests]
        assert all(r.ok for r in results)
        for req, r in zip(requests, results):
            solo = execute_solo(plan_request(req, {"g": graph}, {}))
            assert results_equal(r, solo)


# ------------------------------------------------------------ degradation #


class TestDegradationLadder:
    def overloaded_server(self, graph, **kw):
        # max_batch larger than anything submitted + a huge linger keeps the
        # queue full deterministically: nothing releases during the test
        srv = QueryServer(
            workers=1,
            max_batch=64,
            linger_s=10.0,
            queue_limit=1,
            result_cache_size=32,
            breaker_policy=None,
            **kw,
        )
        srv.register_graph("g", graph)
        return srv

    def test_ladder_off_by_default_raises(self, graph):
        srv = self.overloaded_server(graph)
        with srv:
            srv.submit(_req(source=1))
            with pytest.raises(ServiceOverloadedError):
                srv.submit(_req(source=2))

    def test_sssp_downgrades_to_approx(self, graph):
        from repro.algorithms import spiking_khop_approx

        srv = self.overloaded_server(graph, degraded_serving=True)
        with srv:
            srv.submit(_req(source=1))  # fills the queue
            r = srv.submit(_req(source=2)).result(1)
        assert r.ok and r.degraded and not r.stale
        expected = spiking_khop_approx(graph, 2, graph.n - 1)
        assert np.array_equal(r.dist, expected.dist)
        counters = srv.stats()["metrics"]["counters"]
        assert counters["service.degraded.approx"] == 1

    def test_stale_cache_served_before_approx(self, graph):
        srv = self.overloaded_server(graph, degraded_serving=True)
        with srv:
            # seed the cache by hand (the worker is lingering), then expire
            # the entry into its grace window
            fresh = QueryResult(request_id="seed", kind="sssp", status=QueryStatus.OK)
            key = srv._cache_key(_req(source=3), srv._resident_keys["g"])
            srv._result_cache.put(key, fresh)
            with srv._result_cache._lock:
                expires, value = srv._result_cache._entries[key]
                srv._result_cache._entries[key] = (time.monotonic() - 1.0, value)
            srv.submit(_req(source=1))  # fills the queue
            r = srv.submit(_req(source=3)).result(1)
        assert r.ok and r.degraded and r.stale and r.cached
        assert srv.stats()["result_cache"]["stale_hits"] == 1
        assert srv.stats()["metrics"]["counters"]["service.degraded.stale"] == 1

    def test_non_sssp_kinds_fall_through_to_rejection(self, graph):
        srv = self.overloaded_server(graph, degraded_serving=True)
        with srv:
            srv.submit(_req(source=1))
            with pytest.raises(ServiceOverloadedError):
                srv.submit(_req(kind="khop", source=2, k=4))

    def test_degraded_serving_enables_stale_grace_default(self, graph):
        srv = QueryServer(degraded_serving=True, result_cache_ttl_s=2.0)
        assert srv._result_cache.stale_grace_s == 10.0
        srv2 = QueryServer(result_cache_ttl_s=2.0)
        assert srv2._result_cache.stale_grace_s == 0.0


# ------------------------------------------------------------------- cli #


class TestChaosCLI:
    def test_chaos_cli_writes_bench(self, tmp_path):
        import json

        from repro.cli import main

        out = tmp_path / "BENCH_chaos.json"
        rc = main(["chaos", "worker-crash", "--requests", "16", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.chaos.bench/v1"
        assert report["outcome"]["lost"] == 0
        assert report["supervisor"]["crashes"] == 1

    def test_chaos_cli_list(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--list"]) == 0
        listed = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in listed


# --------------------------------------------------------------- loadgen #


class TestLoadgenPerKind:
    def test_per_kind_breakdown_present(self, graph):
        from repro.service import run_loadgen

        report = run_loadgen(
            {"g": graph},
            n_requests=30,
            clients=4,
            depth=8,
            workers=1,
            max_batch=16,
            linger_s=0.005,
            seed=3,
            skip_naive=True,
            verify=False,
        )
        per_kind = report["serving"]["per_kind"]
        assert set(per_kind) <= {"sssp", "khop", "apsp"}
        assert sum(v["requests"] for v in per_kind.values()) == 30
        for v in per_kind.values():
            assert v["ok"] + v["errors"] == v["requests"]
            assert v["latency_p99_s"] >= v["latency_p50_s"] >= 0.0
