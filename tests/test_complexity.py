"""Tests of the analysis layer: Table-1 formulas, advantage predicates,
crossover location, table rendering."""

import math

import pytest

from repro.analysis import (
    ComparisonRow,
    advantage_conditions_table1,
    advantage_ratio,
    conventional_khop_time,
    conventional_sssp_time,
    distance_lower_bound_khop,
    distance_lower_bound_sssp,
    find_crossover,
    neuro_approx_khop_time,
    neuro_khop_poly_time,
    neuro_khop_pseudo_time,
    neuro_sssp_poly_time,
    neuro_sssp_pseudo_time,
    render_table,
)
from repro.analysis.complexity import log2c


class TestFormulas:
    def test_log_clamped(self):
        assert log2c(0.5) == 1.0
        assert log2c(8) == 3.0

    def test_conventional(self):
        assert conventional_sssp_time(8, 100) == 100 + 8 * 3
        assert conventional_khop_time(5, 100) == 500

    def test_lower_bounds(self):
        assert distance_lower_bound_sssp(100, 4) == pytest.approx(1000 / 2)
        assert distance_lower_bound_khop(100, 3, 4) == pytest.approx(1500)

    def test_pseudo_sssp_both_regimes(self):
        no_dm = neuro_sssp_pseudo_time(50, 200, 20, data_movement=False)
        dm = neuro_sssp_pseudo_time(50, 200, 20, data_movement=True)
        assert no_dm == 250
        assert dm == 20 * 50 + 200

    def test_pseudo_khop_log_factor(self):
        base = neuro_sssp_pseudo_time(50, 200, 20, data_movement=False)
        with_k = neuro_khop_pseudo_time(50, 200, 20, 8, data_movement=False)
        assert with_k == base * 3  # log2(8)

    def test_poly_sssp(self):
        v = neuro_sssp_poly_time(16, 100, 4, 5, data_movement=False)
        assert v == (5 + 100) * 6  # log2(64)
        v_dm = neuro_sssp_poly_time(16, 100, 4, 5, data_movement=True)
        assert v_dm == (16 * 5 + 100) * 6

    def test_poly_khop(self):
        v = neuro_khop_poly_time(16, 100, 4, 7, data_movement=False)
        assert v == (7 + 100) * 6

    def test_approx_formula_monotone_in_k(self):
        a = neuro_approx_khop_time(64, 500, 8, 4, data_movement=False)
        b = neuro_approx_khop_time(64, 500, 8, 16, data_movement=False)
        assert b > a


class TestAdvantage:
    def test_ratio(self):
        assert advantage_ratio(100, 50) == 2.0
        assert advantage_ratio(100, 0) == math.inf

    def test_khop_nodm_condition_flips_with_k(self):
        """log(nU) = o(k): holds for large k, fails for small k."""
        base = dict(n=1024, m=10**5, U=1, c=1)
        small_k = advantage_conditions_table1(**base, k=3, L=10)
        large_k = advantage_conditions_table1(**base, k=64, L=10)
        assert not small_k["khop_poly_nodm"]
        assert large_k["khop_poly_nodm"]

    def test_sssp_poly_never_wins_without_dm(self):
        conds = advantage_conditions_table1(n=100, m=1000, U=10, c=1, alpha=5)
        assert conds["sssp_poly_nodm"] is False

    def test_pseudo_dm_condition_depends_on_L(self):
        base = dict(n=100, m=5000, U=4, c=1)
        short = advantage_conditions_table1(**base, L=10)
        long = advantage_conditions_table1(**base, L=10**7)
        assert short["sssp_pseudo_dm"]
        assert not long["sssp_pseudo_dm"]

    def test_pseudo_nodm_needs_sparse_graph(self):
        sparse = advantage_conditions_table1(n=10**4, m=2 * 10**4, U=1, c=1, L=100)
        dense = advantage_conditions_table1(n=100, m=9000, U=1, c=1, L=100)
        assert sparse["sssp_pseudo_nodm"]
        assert not dense["sssp_pseudo_nodm"]

    def test_crossover_found(self):
        conv = lambda k: float(k) * 1000  # km
        neuro = lambda k: 14_000.0  # m log(nU), constant in k
        assert find_crossover(conv, neuro, range(1, 100)) == 15

    def test_crossover_absent(self):
        assert find_crossover(lambda k: 10.0, lambda k: 100.0, range(1, 50)) is None


class TestRendering:
    def test_render_includes_all_rows(self):
        rows = [
            ComparisonRow("SSSP", 1000, 500, lower_bound=100,
                          predicted_winner="neuromorphic"),
            ComparisonRow("k-hop", 100, 800),
        ]
        text = render_table(rows, title="Table 1")
        assert "Table 1" in text
        assert "SSSP" in text and "k-hop" in text
        assert "neuromorphic" in text and "conventional" in text

    def test_measured_winner(self):
        assert ComparisonRow("x", 10, 5).measured_winner == "neuromorphic"
        assert ComparisonRow("x", 5, 10).measured_winner == "conventional"

    def test_ratio_field(self):
        assert ComparisonRow("x", 10, 5).ratio == 2.0


class TestNeuronFormulas:
    def test_pseudo_sssp_neurons(self):
        from repro.analysis.complexity import neuro_sssp_pseudo_neurons

        assert neuro_sssp_pseudo_neurons(16, 100) == 16
        assert neuro_sssp_pseudo_neurons(16, 100, with_paths=True) == 16 + 16 * 4

    def test_khop_pseudo_neurons_match_measured_scaling(self):
        from repro.algorithms import spiking_khop_pseudo
        from repro.analysis.complexity import neuro_khop_pseudo_neurons
        from repro.workloads import gnp_graph

        g = gnp_graph(20, 0.3, max_length=4, seed=1)
        k = 8
        measured = spiking_khop_pseudo(g, 0, k).cost.neuron_count
        predicted = neuro_khop_pseudo_neurons(g.m, k)
        assert 0.5 * predicted <= measured <= 3 * predicted

    def test_poly_neurons(self):
        from repro.analysis.complexity import neuro_khop_poly_neurons

        assert neuro_khop_poly_neurons(16, 100, 4) == 100 * 6  # log2(64)

    def test_approx_neurons_independent_of_m(self):
        from repro.analysis.complexity import neuro_approx_khop_neurons

        a = neuro_approx_khop_neurons(64, 4, 8)
        assert a == neuro_approx_khop_neurons(64, 4, 8)
        assert a < 64 * 20  # n * polylog

    def test_crossbar_neurons(self):
        from repro.analysis.complexity import crossbar_neurons

        assert crossbar_neurons(10) == 200
