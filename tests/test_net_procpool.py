"""Tests of the process-pool worker tier and its chaos scenario.

The contract under test is exactly the thread-tier supervisor contract
lifted across a process boundary: batches run in worker processes with
resident compiled networks, results are byte-identical to in-process
simulation, a SIGKILLed worker surfaces as :class:`WorkerProcessDied`
(``BaseException`` — it must sail past ``except Exception`` so the
thread-level supervisor sees the crash), the pool respawns before the
dispatcher retries, and the chaos harness proves zero lost tickets.
"""

import os
import time

import numpy as np
import pytest

from repro.algorithms.sssp_pseudo import sssp_network
from repro.core.run import simulate, simulate_batch
from repro.errors import RETRYABLE_ERROR_CODES, RemoteWorkerError
from repro.service import SCENARIOS, QueryRequest, QueryServer, run_chaos
from repro.service.net import ProcessWorkerPool, WorkerProcessDied
from repro.service.net.bench import run_pool_comparison
from repro.workloads import gnp_graph

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(24, 0.2, max_length=7, seed=11, ensure_source_reaches=True)


@pytest.fixture(scope="module")
def pool():
    with ProcessWorkerPool(workers=2) as p:
        yield p


def _sssp_job(graph, sources):
    net, node_ids = sssp_network(graph)
    stimuli = [{0: [node_ids[s]]} for s in sources]
    kwargs = {
        "max_steps": graph.n * graph.max_length() + 1,
        "engine": "event",
        "stop_when_quiescent": True,
    }
    return net, stimuli, kwargs


class TestParity:
    def test_batch_matches_in_process(self, graph, pool):
        net, stimuli, kwargs = _sssp_job(graph, [0, 3, 7])
        remote, raw = pool.execute(("t", "parity"), net, stimuli, None, kwargs)
        local = simulate_batch(net, stimuli, faults=None, **kwargs)
        assert len(remote) == len(local)
        for r, s in zip(remote, local):
            np.testing.assert_array_equal(r.first_spike, s.first_spike)
            np.testing.assert_array_equal(r.spike_counts, s.spike_counts)
            assert r.final_tick == s.final_tick
            assert r.stop_reason == s.stop_reason
        assert raw  # per-batch metrics came back with the results

    def test_network_stays_resident(self, graph, pool):
        net, stimuli, kwargs = _sssp_job(graph, [1])
        before = pool.stats()["resident_networks"]
        pool.execute(("t", "resident"), net, stimuli, None, kwargs)
        pool.execute(("t", "resident"), net, stimuli, None, kwargs)
        after = pool.stats()["resident_networks"]
        assert after >= before + 1

    def test_execute_many_in_job_order(self, graph, pool):
        net, _, kwargs = _sssp_job(graph, [0])
        _, node_ids = sssp_network(graph)
        jobs = [
            {
                "net_key": ("t", "many"),
                "network": net,
                "stimuli": [{0: [node_ids[s]]}],
                "faults": None,
                "sim_kwargs": kwargs,
            }
            for s in (0, 2, 5)
        ]
        out = pool.execute_many(jobs)
        assert len(out) == 3
        solo = [
            simulate(net, j["stimuli"][0], **kwargs) for j in jobs
        ]
        for (remote, _), s in zip(out, solo):
            np.testing.assert_array_equal(remote[0].first_spike, s.first_spike)


class TestCrashRecovery:
    def test_sigkill_mid_batch_raises_and_respawns(self, graph):
        with ProcessWorkerPool(workers=1) as p:
            net, stimuli, kwargs = _sssp_job(graph, [0])
            p.execute(("t", "warm"), net, stimuli, None, kwargs)
            with pytest.raises(WorkerProcessDied):
                p.execute(
                    ("t", "warm"), net, stimuli, None, kwargs, kill_mid_batch=True
                )
            stats = p.stats()
            assert stats["restarts"] == 1
            assert stats["alive"] == 1
            # the respawned worker serves again (network re-shipped)
            results, _ = p.execute(("t", "warm"), net, stimuli, None, kwargs)
            solo = simulate(net, stimuli[0], **kwargs)
            np.testing.assert_array_equal(results[0].first_spike, solo.first_spike)

    def test_worker_process_died_escapes_except_exception(self):
        assert issubclass(WorkerProcessDied, BaseException)
        assert not issubclass(WorkerProcessDied, Exception)

    def test_heartbeat_respawns_idle_death(self, graph):
        with ProcessWorkerPool(workers=1) as p:
            net, stimuli, kwargs = _sssp_job(graph, [0])
            p.execute(("t", "hb"), net, stimuli, None, kwargs)
            pid = p.stats()["pids"][0]
            os.kill(pid, 9)
            deadline = time.monotonic() + 10.0
            while p.stats()["alive"] and time.monotonic() < deadline:
                time.sleep(0.02)
            p.heartbeat(force=True)
            stats = p.stats()
            assert stats["restarts"] == 1 and stats["alive"] == 1
            p.execute(("t", "hb"), net, stimuli, None, kwargs)

    def test_remote_error_carries_classified_code(self, graph, pool):
        net, stimuli, _ = _sssp_job(graph, [0])
        with pytest.raises(RemoteWorkerError) as exc_info:
            pool.execute(
                ("t", "bad"), net, stimuli, None, {"max_steps": -5}
            )
        assert exc_info.value.error_code == "INVALID"

    def test_chaos_kill_next_arms_one_kill(self, graph):
        with ProcessWorkerPool(workers=1) as p:
            net, stimuli, kwargs = _sssp_job(graph, [0])
            p.chaos_kill_next()
            with pytest.raises(WorkerProcessDied):
                p.execute(("t", "armed"), net, stimuli, None, kwargs)
            assert p.stats()["kills"] == 1
            p.execute(("t", "armed"), net, stimuli, None, kwargs)


class TestServerIntegration:
    def test_pool_backed_server_matches_plain(self, graph):
        reqs = [
            QueryRequest(kind="sssp", graph_id="g", source=s) for s in (0, 3, 7)
        ]

        def serve(pool):
            server = QueryServer(
                workers=2, max_batch=8, linger_s=0.005, process_pool=pool
            )
            server.register_graph("g", graph)
            with server:
                return [server.submit(r).result(timeout=60) for r in reqs]

        plain = serve(None)
        with ProcessWorkerPool(workers=2) as pool:
            pooled = serve(pool)
            assert pool.stats()["jobs"] >= 1
        for a, b in zip(plain, pooled):
            assert a.ok and b.ok
            np.testing.assert_array_equal(a.dist, b.dist)

    def test_worker_crash_error_code_is_retryable(self):
        assert "WORKER_CRASH" in RETRYABLE_ERROR_CODES


class TestChaosScenario:
    def test_worker_process_kill_scenario_listed(self):
        spec = SCENARIOS["worker-process-kill"]
        assert spec["processes"] == 2
        assert spec["chaos"]["kill_batches"] == (2,)

    def test_worker_process_kill_zero_losses(self):
        report = run_chaos("worker-process-kill", n_requests=32, seed=0)
        assert report["outcome"]["lost"] == 0
        assert report["outcome"]["ok"] == 32
        assert report["equality"]["mismatches"] == 0
        assert report["process_pool"]["kills"] == 1
        assert report["process_pool"]["restarts"] == 1
        assert report["config"]["processes"] == 2


class TestPoolComparison:
    def test_rows_and_equality(self):
        report = run_pool_comparison(
            n_sources=8, slice_width=4, process_workers=2, shards=2, verify=True
        )
        rows = report["rows"]
        assert set(rows) == {"thread_pool", "process_pool", "sharded"}
        assert report["equality"]["mismatches"] == 0
        assert report["cpu_count"] == os.cpu_count()
        assert rows["process_pool"]["ok"] == rows["thread_pool"]["ok"]
        assert rows["sharded"]["ok"] == 8

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="process-vs-thread speedup needs >= 2 CPUs",
    )
    def test_process_pool_speedup_on_real_cpus(self):
        report = run_pool_comparison(verify=False)
        speedup = report["rows"]["process_pool"]["speedup_vs_thread"]
        assert speedup is not None and speedup >= 2.0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
