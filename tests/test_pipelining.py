"""Property tests of circuit pipelining: random wave sequences through the
Section-5 circuits must decode independently per wave (the ``tau = 1``
memorylessness the graph compilers rely on)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    CircuitBuilder,
    brute_force_max,
    carry_lookahead_adder,
    masked_min,
    siu_adder,
    wired_or_max,
)
from repro.circuits.runner import run_circuit_waves


@given(
    waves=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31),
            st.integers(min_value=0, max_value=31),
        ),
        min_size=2,
        max_size=8,
    ),
    kind=st.sampled_from(["cla", "siu"]),
)
@settings(max_examples=25, deadline=None)
def test_adders_pipeline(waves, kind):
    b = CircuitBuilder()
    xa = b.input_bits("a", 5)
    xb = b.input_bits("b", 5)
    adder = carry_lookahead_adder if kind == "cla" else siu_adder
    b.output_bits("out", adder(b, xa, xb))
    outs = run_circuit_waves(b, [{"a": x, "b": y} for x, y in waves])
    assert [o["out"] for o in outs] == [x + y for x, y in waves]


@given(
    waves=st.lists(
        st.lists(st.integers(min_value=0, max_value=15), min_size=3, max_size=3),
        min_size=2,
        max_size=6,
    ),
    kind=st.sampled_from(["wired", "brute"]),
)
@settings(max_examples=25, deadline=None)
def test_max_circuits_pipeline(waves, kind):
    b = CircuitBuilder()
    ins = [b.input_bits(f"x{i}", 4) for i in range(3)]
    fn = wired_or_max if kind == "wired" else brute_force_max
    res = fn(b, ins)
    b.output_bits("out", res.out_bits)
    outs = run_circuit_waves(
        b, [{f"x{i}": v for i, v in enumerate(wave)} for wave in waves]
    )
    assert [o["out"] for o in outs] == [max(wave) for wave in waves]


@given(
    waves=st.lists(
        st.tuples(
            st.lists(st.integers(min_value=0, max_value=7), min_size=2, max_size=2),
            st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=2),
        ),
        min_size=2,
        max_size=6,
    ),
)
@settings(max_examples=25, deadline=None)
def test_masked_min_pipelines(waves):
    b = CircuitBuilder()
    ins = [b.input_bits(f"x{i}", 3) for i in range(2)]
    vs = b.input_bits("valid", 2)
    res = masked_min(b, ins, vs)
    b.output_bits("out", res.out_bits)
    b.output_bits("v", [res.valid], aligned=False)
    outs = run_circuit_waves(
        b,
        [
            {**{f"x{i}": v for i, v in enumerate(vals)}, "valid": mask}
            for vals, mask in waves
        ],
    )
    for (vals, mask), out in zip(waves, outs):
        chosen = [v for v, m in zip(vals, mask) if m]
        if chosen:
            assert out["v"] == 1 and out["out"] == min(chosen)
        else:
            assert out["v"] == 0 and out["out"] == 0
