"""Shared fixture library for the differential test harnesses.

Three suites pin engine equivalence by randomized differential testing —
``test_engine_equivalence.py`` (dense vs event vs session),
``test_batch_differential.py`` (batched dense vs solo runs),
``test_sparse_differential.py`` (sparse CSR core vs dense vs event) — and
``test_dynamic.py`` pins incremental recompilation against from-scratch
rebuilds.  They all need the same ingredients: random network strategies,
random seeded fault-model strategies, and result/raster/hook-total equality
assertions.  This module is that single source of truth; the suites import
from here instead of growing diverging copies.

Conventions the strategies encode:

* thresholds/weights are drawn from small exact-float sets and ``tau`` from
  ``{0.0, 1.0}``, so voltage arithmetic is exact and every engine must agree
  bit-for-bit (fractional ``tau`` summation-order caveats are exercised by
  dedicated tests, not the bulk harness);
* ``WeightDrift`` is excluded from the fault strategy: drifted float weights
  make per-engine summation order visible, so its equivalence is asserted
  separately on single-delivery topologies (``test_transient.py``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core import (
    Network,
    SpikeDrop,
    SpuriousSpikes,
    StuckAtFiring,
    StuckAtSilent,
    compose,
    simulate,
)

__all__ = [
    "MAX_STEPS",
    "NET_FIELDS",
    "assert_identical",
    "assert_networks_identical",
    "assert_same_raster_upto",
    "assert_same_simulation",
    "batch_cases",
    "fault_models",
    "random_networks",
]

#: Default tick budget for harness runs: large enough for every strategy's
#: delay range, small enough that runaway recurrent examples stay cheap.
MAX_STEPS = 60

#: The array fields that define a compiled network's simulation semantics;
#: two compilations agreeing on all of them are interchangeable.
NET_FIELDS = (
    "v_reset",
    "v_threshold",
    "tau",
    "one_shot",
    "indptr",
    "syn_dst",
    "syn_weight",
    "syn_delay",
)


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #


@st.composite
def random_networks(draw, min_neurons=2, max_neurons=12, max_delay=6):
    """A random recurrent network plus a single-wave stimulus.

    Returns ``(net, stim)`` where ``stim`` is a sorted list of tick-0
    input neuron ids.  ``max_delay`` widens the delay range (the sparse
    suite raises it to exercise ring-buffer wraparound and delay-bucket
    spread; the default matches the historical dense/event harness).
    """
    n = draw(st.integers(min_value=min_neurons, max_value=max_neurons))
    net = Network()
    for _ in range(n):
        net.add_neuron(
            v_threshold=draw(st.sampled_from([0.5, 1.5, 2.5])),
            tau=draw(st.sampled_from([0.0, 1.0])),
            one_shot=draw(st.booleans()),
        )
    m = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(m):
        net.add_synapse(
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            weight=draw(st.sampled_from([-2.0, -1.0, 1.0, 2.0])),
            delay=draw(st.integers(min_value=1, max_value=max_delay)),
        )
    stim_count = draw(st.integers(min_value=1, max_value=min(3, n)))
    stim = sorted(
        {draw(st.integers(min_value=0, max_value=n - 1)) for _ in range(stim_count)}
    )
    return net, stim


@st.composite
def batch_cases(draw, max_neurons=10, max_delay=6):
    """A random network plus B per-item stimulus schedules and stop config.

    Returns ``(net, stimuli, terminal, watch)``.  Each stimulus is either a
    tick-0 id list or a multi-tick ``{tick: ids}`` schedule, the shapes
    :func:`repro.core.simulate_batch` accepts per item.
    """
    n = draw(st.integers(min_value=2, max_value=max_neurons))
    net = Network()
    for _ in range(n):
        net.add_neuron(
            v_threshold=draw(st.sampled_from([0.5, 1.5, 2.5])),
            tau=draw(st.sampled_from([0.0, 1.0])),
            one_shot=draw(st.booleans()),
        )
    m = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(m):
        net.add_synapse(
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            weight=draw(st.sampled_from([-2.0, -1.0, 1.0, 2.0])),
            delay=draw(st.integers(min_value=1, max_value=max_delay)),
        )
    B = draw(st.integers(min_value=1, max_value=5))
    stimuli = []
    for _ in range(B):
        if draw(st.booleans()):
            # multi-tick schedule: {tick: ids}
            sched = {}
            for _ in range(draw(st.integers(min_value=1, max_value=3))):
                tick = draw(st.integers(min_value=0, max_value=8))
                ids = sched.setdefault(tick, set())
                for _ in range(draw(st.integers(min_value=1, max_value=2))):
                    ids.add(draw(st.integers(min_value=0, max_value=n - 1)))
            stimuli.append({t: sorted(ids) for t, ids in sched.items()})
        else:
            stimuli.append(
                sorted(
                    {
                        draw(st.integers(min_value=0, max_value=n - 1))
                        for _ in range(draw(st.integers(min_value=1, max_value=3)))
                    }
                )
            )
    terminal = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n - 1)))
    watch = list(range(n)) if draw(st.booleans()) else None
    return net, stimuli, terminal, watch


@st.composite
def fault_models(draw, n):
    """A composite of 1-3 seeded transient fault processes for ``n`` neurons."""
    parts = []
    if draw(st.booleans()):
        parts.append(
            SpikeDrop(
                draw(st.sampled_from([0.1, 0.3, 0.6])), seed=draw(st.integers(0, 99))
            )
        )
    if draw(st.booleans()):
        parts.append(
            SpuriousSpikes(
                draw(st.sampled_from([0.01, 0.05])), seed=draw(st.integers(0, 99))
            )
        )
    if draw(st.booleans()):
        nid = draw(st.integers(min_value=0, max_value=n - 1))
        start = draw(st.integers(min_value=0, max_value=20))
        length = draw(st.integers(min_value=1, max_value=15))
        cls = StuckAtSilent if draw(st.booleans()) else StuckAtFiring
        parts.append(cls([(nid, start, start + length)]))
    if not parts:
        parts.append(SpikeDrop(0.2, seed=draw(st.integers(0, 99))))
    return compose(*parts)


# --------------------------------------------------------------------- #
# Assertions
# --------------------------------------------------------------------- #


def assert_identical(res_a, res_b, *, label=""):
    """Full result equality: spikes, counts, rasters, and stop metadata.

    For engine pairs that promise identical semantics end to end (dense vs
    batched dense, dense vs sparse).
    """
    assert res_a.first_spike.tolist() == res_b.first_spike.tolist(), label
    assert res_a.spike_counts.tolist() == res_b.spike_counts.tolist(), label
    assert res_a.stop_reason == res_b.stop_reason, label
    assert res_a.final_tick == res_b.final_tick, label
    if res_a.spike_events is not None or res_b.spike_events is not None:
        a_ev = res_a.spike_events or {}
        b_ev = res_b.spike_events or {}
        assert sorted(a_ev) == sorted(b_ev), label
        for t in a_ev:
            assert (
                sorted(a_ev[t].tolist()) == sorted(b_ev[t].tolist())
            ), f"{label} tick {t}"


def assert_same_raster_upto(res_a, res_b, *, label=""):
    """Spike equality up to the common horizon, ignoring stop metadata.

    For cross-engine pairs where ``final_tick`` legitimately differs: the
    event engine reports the last event time, while the dense-semantics
    engines need one extra quiet tick to observe quiescence.
    """
    assert res_a.first_spike.tolist() == res_b.first_spike.tolist(), label
    assert res_a.spike_counts.tolist() == res_b.spike_counts.tolist(), label
    horizon = min(res_a.final_tick, res_b.final_tick)
    for t in range(horizon + 1):
        a = res_a.spike_events.get(t)
        b = res_b.spike_events.get(t)
        a_ids = [] if a is None else sorted(a.tolist())
        b_ids = [] if b is None else sorted(b.tolist())
        assert a_ids == b_ids, f"{label} tick {t}: {a_ids} vs {b_ids}"


def assert_networks_identical(a, b) -> None:
    """Two compiled networks agree on every semantics-bearing array."""
    assert a.n == b.n
    for field in NET_FIELDS:
        assert np.array_equal(getattr(a, field), getattr(b, field)), field


def assert_same_simulation(net_a, net_b, stimulus, max_steps: int) -> None:
    """Both networks produce identical rasters and stop metadata (dense)."""
    ra = simulate(
        net_a, stimulus, max_steps=max_steps, record_spikes=True, engine="dense"
    )
    rb = simulate(
        net_b, stimulus, max_steps=max_steps, record_spikes=True, engine="dense"
    )
    assert np.array_equal(ra.first_spike, rb.first_spike)
    assert np.array_equal(ra.spike_counts, rb.spike_counts)
    assert ra.final_tick == rb.final_tick
    assert ra.stop_reason == rb.stop_reason
    assert sorted(ra.spike_events) == sorted(rb.spike_events)
    for t in ra.spike_events:
        assert np.array_equal(ra.spike_events[t], rb.spike_events[t]), t
