"""Integration tests: the fully compiled Section 4.1/4.2 gate-level SNNs.

Small graphs only — these networks contain the complete per-vertex max/min
and adder circuitry and are executed tick by tick on the dense LIF engine.
Agreement with the reference Bellman–Ford is exact.
"""

import numpy as np
import pytest

from repro.algorithms import (
    compile_khop_poly_gate_level,
    compile_khop_pseudo_gate_level,
)
from repro.algorithms.khop_pseudo import run_khop_gate_level
from repro.algorithms.khop_poly import run_khop_poly_gate_level
from repro.errors import ValidationError
from repro.workloads import WeightedDigraph, gnp_graph, path_graph
from tests.conftest import ref_khop


class TestTTLGateLevel:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_random_graphs(self, seed, k):
        g = gnp_graph(5, 0.4, max_length=3, seed=200 + seed, ensure_source_reaches=True)
        compiled = compile_khop_pseudo_gate_level(g, 0, k)
        r = run_khop_gate_level(compiled)
        assert np.array_equal(r.dist, ref_khop(g, 0, k)), (seed, k)

    @pytest.mark.parametrize("style", ["wired", "brute"])
    def test_both_max_styles(self, style):
        g = gnp_graph(4, 0.5, max_length=2, seed=33, ensure_source_reaches=True)
        compiled = compile_khop_pseudo_gate_level(g, 0, 2, style=style)
        r = run_khop_gate_level(compiled)
        assert np.array_equal(r.dist, ref_khop(g, 0, 2))

    def test_path_graph_hop_budget(self):
        g = path_graph(5, max_length=2, seed=1)
        compiled = compile_khop_pseudo_gate_level(g, 0, 2)
        r = run_khop_gate_level(compiled)
        expect = ref_khop(g, 0, 2)
        assert np.array_equal(r.dist, expect)
        assert (r.dist[3:] == -1).all()

    def test_hop_vs_length_tradeoff(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 3)])
        r1 = run_khop_gate_level(compile_khop_pseudo_gate_level(g, 0, 1))
        r2 = run_khop_gate_level(compile_khop_pseudo_gate_level(g, 0, 2))
        assert r1.dist[2] == 3
        assert r2.dist[2] == 2

    def test_edge_delays_hide_circuit_depth(self):
        g = gnp_graph(4, 0.5, max_length=3, seed=5, ensure_source_reaches=True)
        compiled = compile_khop_pseudo_gate_level(g, 0, 3)
        assert compiled.scale > max(compiled.node_depth.values())

    def test_resource_accounting(self):
        g = gnp_graph(4, 0.5, max_length=2, seed=6, ensure_source_reaches=True)
        compiled = compile_khop_pseudo_gate_level(g, 0, 3)
        r = run_khop_gate_level(compiled)
        assert r.cost.neuron_count == compiled.net.n_neurons
        assert r.cost.spike_count > 0
        assert r.cost.message_bits == 2  # TTL values 0..2

    def test_requires_positive_k(self):
        g = path_graph(3, seed=0)
        with pytest.raises(ValidationError):
            compile_khop_pseudo_gate_level(g, 0, 0)


class TestPolyGateLevel:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_random_graphs(self, seed, k):
        g = gnp_graph(5, 0.4, max_length=3, seed=300 + seed, ensure_source_reaches=True)
        compiled = compile_khop_poly_gate_level(g, 0, k)
        r = run_khop_poly_gate_level(compiled)
        assert np.array_equal(r.dist, ref_khop(g, 0, k)), (seed, k)

    @pytest.mark.parametrize("style", ["wired", "brute"])
    def test_both_min_styles(self, style):
        g = gnp_graph(4, 0.5, max_length=2, seed=44, ensure_source_reaches=True)
        compiled = compile_khop_poly_gate_level(g, 0, 2, style=style)
        r = run_khop_poly_gate_level(compiled)
        assert np.array_equal(r.dist, ref_khop(g, 0, 2))

    def test_outputs_fire_on_round_boundaries(self):
        g = path_graph(4, max_length=2, seed=3)
        compiled = compile_khop_poly_gate_level(g, 0, 3)
        r = run_khop_poly_gate_level(compiled)
        assert r.sim is not None and r.sim.spike_events is not None
        boundary_ticks = {r_ * compiled.x for r_ in range(1, compiled.k + 1)}
        valid_ids = {sig.nid for sig in compiled.out_valid.values()}
        for t, ids in r.sim.spike_events.items():
            fired_valids = valid_ids & set(ids.tolist())
            if fired_valids:
                assert t in boundary_ticks, f"valid fired off-boundary at {t}"

    def test_cycle_graph(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1), (2, 0, 1)])
        compiled = compile_khop_poly_gate_level(g, 0, 3)
        r = run_khop_poly_gate_level(compiled)
        assert np.array_equal(r.dist, ref_khop(g, 0, 3))

    def test_source_with_in_edges_relays(self):
        # source sits on a cycle; messages may route through it
        g = WeightedDigraph(3, [(0, 1, 2), (1, 0, 2), (1, 2, 2), (0, 2, 9)])
        compiled = compile_khop_poly_gate_level(g, 0, 3)
        r = run_khop_poly_gate_level(compiled)
        assert np.array_equal(r.dist, ref_khop(g, 0, 3))

    def test_round_cost_accounting(self):
        g = path_graph(4, max_length=2, seed=7)
        compiled = compile_khop_poly_gate_level(g, 0, 2)
        r = run_khop_poly_gate_level(compiled)
        assert r.cost.rounds == 2
        assert r.cost.round_length == compiled.x
        assert r.cost.simulated_ticks == 2 * compiled.x

    def test_requires_positive_k(self):
        g = path_graph(3, seed=0)
        with pytest.raises(ValidationError):
            compile_khop_poly_gate_level(g, 0, 0)
