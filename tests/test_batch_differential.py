"""Differential harness for the batched dense engine.

:func:`~repro.core.batch.simulate_dense_batch` promises per-item results
*identical* to B independent solo runs.  Hypothesis drives randomized
networks, per-item stimulus schedules, and per-item transient-fault
models (strategies shared via ``tests/differential.py``), and asserts
spike-for-spike equality against both reference executions:

* **sequential dense** — exact equality on everything, including stop
  reason, final tick, and full recorded rasters;
* **event-driven** — equality on first-spike times, spike counts, and
  spike trains (stop metadata legitimately differs: the event engine
  reports the last event time as its final tick, while the dense engines
  need one extra quiet tick to observe quiescence).

Per-item telemetry hooks must likewise observe exactly the solo event
stream (spike, delivery, and fault-event totals).
"""

from hypothesis import given, settings, strategies as st

from repro.core import simulate_dense, simulate_event_driven
from repro.core.batch import simulate_dense_batch
from repro.telemetry import TraceRecorder
from tests.differential import (
    MAX_STEPS,
    assert_identical,
    assert_same_raster_upto,
    batch_cases,
    fault_models,
)


@given(batch_cases())
@settings(max_examples=60)
def test_batched_matches_sequential_dense(case):
    """Fault-free: batched items are bit-identical to solo dense runs."""
    net, stimuli, terminal, watch = case
    compiled = net.compile()
    batch = simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        record_spikes=True,
    )
    for b, stim in enumerate(stimuli):
        solo = simulate_dense(
            compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
            record_spikes=True,
        )
        assert_identical(batch[b], solo, label=f"item {b}")


@given(batch_cases())
@settings(max_examples=40)
def test_batched_plain_fast_path_matches_sequential_dense(case):
    """The vectorized no-faults/no-hooks/no-recording path is still exact."""
    net, stimuli, terminal, watch = case
    compiled = net.compile()
    batch = simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
    )
    for b, stim in enumerate(stimuli):
        solo = simulate_dense(
            compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        )
        assert_identical(batch[b], solo, label=f"item {b}")


@given(batch_cases())
@settings(max_examples=40)
def test_batched_matches_event_driven(case):
    """Cross-engine: batched dense vs the event engine, per item.

    Stop metadata is engine-specific, so the comparison covers first-spike
    times, spike counts, and the spike trains up to the common horizon.
    """
    net, stimuli, terminal, watch = case
    compiled = net.compile()
    batch = simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        record_spikes=True,
    )
    for b, stim in enumerate(stimuli):
        ev = simulate_event_driven(
            compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
            record_spikes=True,
        )
        assert_same_raster_upto(batch[b], ev, label=f"item {b}")


@given(batch_cases(), st.data())
@settings(max_examples=60)
def test_batched_matches_sequential_dense_under_faults(case, data):
    """The tentpole invariant: per-item fault binding realizes exactly the
    faults each item's solo run would (counter-based RNG makes fault
    decisions pure in (seed, tick, entity))."""
    net, stimuli, terminal, watch = case
    models = [data.draw(fault_models(n=net.n_neurons)) for _ in stimuli]
    compiled = net.compile()
    batch = simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        record_spikes=True, faults=models,
    )
    for b, stim in enumerate(stimuli):
        solo = simulate_dense(
            compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
            record_spikes=True, faults=models[b],
        )
        assert_identical(batch[b], solo, label=f"item {b}")


@given(batch_cases(), st.data())
@settings(max_examples=30)
def test_batched_hook_totals_match_solo_runs(case, data):
    """Per-item hooks see exactly the solo event stream: spike, delivery,
    and fault-event totals all agree with independent dense runs."""
    net, stimuli, _terminal, _watch = case
    models = [data.draw(fault_models(n=net.n_neurons)) for _ in stimuli]
    compiled = net.compile()
    recorders = [TraceRecorder() for _ in stimuli]
    simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, faults=models, hooks=recorders,
    )
    for b, stim in enumerate(stimuli):
        solo_rec = TraceRecorder()
        simulate_dense(
            compiled, stim, max_steps=MAX_STEPS, faults=models[b], hooks=solo_rec,
        )
        assert recorders[b].total_spikes == solo_rec.total_spikes, f"item {b}"
        assert recorders[b].total_deliveries == solo_rec.total_deliveries, f"item {b}"
        assert recorders[b].fault_totals() == solo_rec.fault_totals(), f"item {b}"
