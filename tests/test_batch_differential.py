"""Differential harness for the batched dense engine.

:func:`~repro.core.batch.simulate_dense_batch` promises per-item results
*identical* to B independent solo runs.  Hypothesis drives randomized
networks, per-item stimulus schedules, and per-item transient-fault
models, and asserts spike-for-spike equality against both reference
executions:

* **sequential dense** — exact equality on everything, including stop
  reason, final tick, and full recorded rasters;
* **event-driven** — equality on first-spike times, spike counts, and
  spike trains (stop metadata legitimately differs: the event engine
  reports the last event time as its final tick, while the dense engines
  need one extra quiet tick to observe quiescence).

Per-item telemetry hooks must likewise observe exactly the solo event
stream (spike, delivery, and fault-event totals).
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    Network,
    SpikeDrop,
    SpuriousSpikes,
    StuckAtFiring,
    StuckAtSilent,
    compose,
    simulate_dense,
    simulate_event_driven,
)
from repro.core.batch import simulate_dense_batch
from repro.telemetry import TraceRecorder

MAX_STEPS = 60


@st.composite
def batch_cases(draw):
    """A random network plus B per-item stimulus schedules and stop config."""
    n = draw(st.integers(min_value=2, max_value=10))
    net = Network()
    for _ in range(n):
        net.add_neuron(
            v_threshold=draw(st.sampled_from([0.5, 1.5, 2.5])),
            tau=draw(st.sampled_from([0.0, 1.0])),
            one_shot=draw(st.booleans()),
        )
    m = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(m):
        net.add_synapse(
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            weight=draw(st.sampled_from([-2.0, -1.0, 1.0, 2.0])),
            delay=draw(st.integers(min_value=1, max_value=6)),
        )
    B = draw(st.integers(min_value=1, max_value=5))
    stimuli = []
    for _ in range(B):
        if draw(st.booleans()):
            # multi-tick schedule: {tick: ids}
            sched = {}
            for _ in range(draw(st.integers(min_value=1, max_value=3))):
                tick = draw(st.integers(min_value=0, max_value=8))
                ids = sched.setdefault(tick, set())
                for _ in range(draw(st.integers(min_value=1, max_value=2))):
                    ids.add(draw(st.integers(min_value=0, max_value=n - 1)))
            stimuli.append({t: sorted(ids) for t, ids in sched.items()})
        else:
            stimuli.append(
                sorted(
                    {
                        draw(st.integers(min_value=0, max_value=n - 1))
                        for _ in range(draw(st.integers(min_value=1, max_value=3)))
                    }
                )
            )
    terminal = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n - 1)))
    watch = list(range(n)) if draw(st.booleans()) else None
    return net, stimuli, terminal, watch


@st.composite
def fault_model(draw, n):
    """A composite of seeded transient fault processes for ``n`` neurons.

    WeightDrift is excluded for the same reason as in the engine
    equivalence suite: drifted float weights make summation order visible.
    """
    parts = []
    if draw(st.booleans()):
        parts.append(
            SpikeDrop(draw(st.sampled_from([0.1, 0.3, 0.6])), seed=draw(st.integers(0, 99)))
        )
    if draw(st.booleans()):
        parts.append(
            SpuriousSpikes(draw(st.sampled_from([0.01, 0.05])), seed=draw(st.integers(0, 99)))
        )
    if draw(st.booleans()):
        nid = draw(st.integers(min_value=0, max_value=n - 1))
        start = draw(st.integers(min_value=0, max_value=20))
        length = draw(st.integers(min_value=1, max_value=15))
        cls = StuckAtSilent if draw(st.booleans()) else StuckAtFiring
        parts.append(cls([(nid, start, start + length)]))
    if not parts:
        parts.append(SpikeDrop(0.2, seed=draw(st.integers(0, 99))))
    return compose(*parts)


def assert_identical(batch_res, solo_res, *, label):
    """Full equality: distances, counts, rasters, and stop metadata."""
    assert batch_res.first_spike.tolist() == solo_res.first_spike.tolist(), label
    assert batch_res.spike_counts.tolist() == solo_res.spike_counts.tolist(), label
    assert batch_res.stop_reason == solo_res.stop_reason, label
    assert batch_res.final_tick == solo_res.final_tick, label
    if batch_res.spike_events is not None or solo_res.spike_events is not None:
        b_ev = batch_res.spike_events or {}
        s_ev = solo_res.spike_events or {}
        assert sorted(b_ev) == sorted(s_ev), label
        for t in b_ev:
            assert sorted(b_ev[t].tolist()) == sorted(s_ev[t].tolist()), f"{label} tick {t}"


@given(batch_cases())
@settings(max_examples=60)
def test_batched_matches_sequential_dense(case):
    """Fault-free: batched items are bit-identical to solo dense runs."""
    net, stimuli, terminal, watch = case
    compiled = net.compile()
    batch = simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        record_spikes=True,
    )
    for b, stim in enumerate(stimuli):
        solo = simulate_dense(
            compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
            record_spikes=True,
        )
        assert_identical(batch[b], solo, label=f"item {b}")


@given(batch_cases())
@settings(max_examples=40)
def test_batched_plain_fast_path_matches_sequential_dense(case):
    """The vectorized no-faults/no-hooks/no-recording path is still exact."""
    net, stimuli, terminal, watch = case
    compiled = net.compile()
    batch = simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
    )
    for b, stim in enumerate(stimuli):
        solo = simulate_dense(
            compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        )
        assert_identical(batch[b], solo, label=f"item {b}")


@given(batch_cases())
@settings(max_examples=40)
def test_batched_matches_event_driven(case):
    """Cross-engine: batched dense vs the event engine, per item.

    Stop metadata is engine-specific, so the comparison covers first-spike
    times, spike counts, and the spike trains up to the common horizon.
    """
    net, stimuli, terminal, watch = case
    compiled = net.compile()
    batch = simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        record_spikes=True,
    )
    for b, stim in enumerate(stimuli):
        ev = simulate_event_driven(
            compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
            record_spikes=True,
        )
        assert batch[b].first_spike.tolist() == ev.first_spike.tolist()
        assert batch[b].spike_counts.tolist() == ev.spike_counts.tolist()
        horizon = min(batch[b].final_tick, ev.final_tick)
        for t in range(horizon + 1):
            d = batch[b].spike_events.get(t)
            e = ev.spike_events.get(t)
            d_ids = [] if d is None else sorted(d.tolist())
            e_ids = [] if e is None else sorted(e.tolist())
            assert d_ids == e_ids, f"item {b} tick {t}"


@given(batch_cases(), st.data())
@settings(max_examples=60)
def test_batched_matches_sequential_dense_under_faults(case, data):
    """The tentpole invariant: per-item fault binding realizes exactly the
    faults each item's solo run would (counter-based RNG makes fault
    decisions pure in (seed, tick, entity))."""
    net, stimuli, terminal, watch = case
    models = [data.draw(fault_model(n=net.n_neurons)) for _ in stimuli]
    compiled = net.compile()
    batch = simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        record_spikes=True, faults=models,
    )
    for b, stim in enumerate(stimuli):
        solo = simulate_dense(
            compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
            record_spikes=True, faults=models[b],
        )
        assert_identical(batch[b], solo, label=f"item {b}")


@given(batch_cases(), st.data())
@settings(max_examples=30)
def test_batched_hook_totals_match_solo_runs(case, data):
    """Per-item hooks see exactly the solo event stream: spike, delivery,
    and fault-event totals all agree with independent dense runs."""
    net, stimuli, _terminal, _watch = case
    models = [data.draw(fault_model(n=net.n_neurons)) for _ in stimuli]
    compiled = net.compile()
    recorders = [TraceRecorder() for _ in stimuli]
    simulate_dense_batch(
        compiled, stimuli, max_steps=MAX_STEPS, faults=models, hooks=recorders,
    )
    for b, stim in enumerate(stimuli):
        solo_rec = TraceRecorder()
        simulate_dense(
            compiled, stim, max_steps=MAX_STEPS, faults=models[b], hooks=solo_rec,
        )
        assert recorders[b].total_spikes == solo_rec.total_spikes, f"item {b}"
        assert recorders[b].total_deliveries == solo_rec.total_deliveries, f"item {b}"
        assert recorders[b].fault_totals() == solo_rec.fault_totals(), f"item {b}"
