"""repro.staticcheck.temporal: spike-time intervals, quiescence bounds, pins.

Four layers:

1. **Exact small cases** — hand-built chains, cycles, pacemakers, and dead
   neurons where the sound interval is computable by inspection, checked
   against both the analysis and an actual dense run.
2. **Incremental re-analysis** — :func:`repropagate` after weight patches
   must agree array-for-array with a from-scratch :func:`analyze_temporal`.
3. **Certifier integration** — every circuit family's measured settle time
   equals its closed-form budget; the SSSP/k-hop drivers certify with
   their runtime bounds; the gadget variant is pinned non-quiescent.
4. **Golden budget gate** — corrupting a pinned budget inside a golden
   fixture makes ``repro lint --golden`` fail with a budget regression.
"""

import json

import numpy as np
import pytest

from repro.core.engine import simulate_dense
from repro.core.network import Network
from repro.errors import ValidationError
from repro.staticcheck import (
    NO_SPIKE,
    analyze_temporal,
    certify_khop,
    certify_library,
    certify_sssp,
    repropagate,
)
from repro.workloads.generators import gnp_graph


def _chain(delays=(2, 3)):
    """0 -> 1 -> ... with unit weights; every neuron fires exactly once."""
    net = Network()
    ids = [net.add_neuron(v_threshold=0.5, tau=1.0) for _ in range(len(delays) + 1)]
    net.mark_input(ids[0])
    for i, d in enumerate(delays):
        net.add_synapse(ids[i], ids[i + 1], weight=1.0, delay=d)
    return net


# --------------------------------------------------------------------------- #
# 1. Exact small cases
# --------------------------------------------------------------------------- #


def test_chain_intervals_are_exact():
    net = _chain((2, 3))
    ta = analyze_temporal(net, stimulus=[0])
    assert ta.live.all()
    assert ta.earliest.tolist() == [0, 2, 5]
    assert ta.latest.tolist() == [0.0, 2.0, 5.0]
    assert ta.last_spike_bound == 5
    assert ta.quiescence_bound == 5 + 3  # + max_delay
    res = simulate_dense(net, [0], max_steps=20)
    assert res.first_spike.tolist() == [0, 2, 5]
    assert res.final_tick <= ta.quiescence_bound


def test_silent_network_quiesces_at_one():
    net = Network()
    net.add_neuron(v_threshold=0.5)
    net.add_neuron(v_threshold=0.5)
    ta = analyze_temporal(net)  # no stimulus, no pacemaker: nothing fires
    assert ta.live_count == 0
    assert ta.last_spike_bound == NO_SPIKE
    assert ta.quiescence_bound == 1
    assert ta.interval(0) is None


def test_inhibited_neuron_is_dead():
    net = Network()
    a = net.add_neuron(v_threshold=0.5, tau=1.0)
    b = net.add_neuron(v_threshold=0.5, tau=1.0)
    net.add_synapse(a, b, weight=-2.0, delay=1)  # only inhibition reaches b
    ta = analyze_temporal(net, stimulus=[a])
    assert bool(ta.live[a]) and not bool(ta.live[b])
    assert ta.earliest[b] == NO_SPIKE and ta.latest[b] == float(NO_SPIKE)
    assert ta.quiescence_bound == 1  # a's forced spike, then silence


def test_pacemaker_is_unbounded_from_tick_one():
    net = Network()
    p = net.add_neuron(v_threshold=0.5, v_reset=1.0)  # fires every tick
    t = net.add_neuron(v_threshold=0.5, tau=1.0)
    net.add_synapse(p, t, weight=1.0, delay=4)
    ta = analyze_temporal(net)
    assert ta.earliest[p] == 1 and ta.earliest[t] == 5
    assert not ta.bounded and ta.quiescence_bound is None
    assert ta.interval(t) == (5, None)
    assert "unbounded" in ta.summary()


def test_one_shot_cycle_is_bounded():
    net = Network()
    a = net.add_neuron(v_threshold=0.5, tau=1.0, one_shot=True)
    b = net.add_neuron(v_threshold=0.5, tau=1.0, one_shot=True)
    net.add_synapse(a, b, weight=1.0, delay=2)
    net.add_synapse(b, a, weight=1.0, delay=2)
    ta = analyze_temporal(net, stimulus=[a])
    # capsum = 2, max internal delay 2: the causal chain entering at tick 0
    # can linger at most (2 - 1) * 2 ticks.
    assert ta.bounded
    assert ta.last_spike_bound == 2
    res = simulate_dense(net, [a], max_steps=20, record_spikes=True)
    assert res.final_tick <= ta.quiescence_bound


def test_uncapped_cycle_is_unbounded_and_caps_tighten_it():
    net = Network()
    a = net.add_neuron(v_threshold=0.5, tau=1.0)
    b = net.add_neuron(v_threshold=0.5, tau=1.0)
    net.add_synapse(a, b, weight=1.0, delay=1)
    net.add_synapse(b, a, weight=1.0, delay=1)
    free = analyze_temporal(net, stimulus=[a])
    assert not free.bounded and free.unbounded_count == 2
    capped = analyze_temporal(net, stimulus=[a], spike_caps={a: 1, b: 1})
    assert capped.bounded
    assert capped.last_spike_bound == 1


def test_multi_wave_stimulus_shifts_latest():
    net = _chain((2,))
    ta = analyze_temporal(net, stimulus={0: [0], 7: [0]})
    assert ta.earliest.tolist() == [0, 2]
    assert ta.latest.tolist() == [7.0, 9.0]
    assert ta.quiescence_bound == 9 + 2


def test_to_dict_and_validation():
    net = _chain((2,))
    ta = analyze_temporal(net, stimulus=[0])
    d = ta.to_dict()
    assert d["neurons"] == 2 and d["live"] == 2 and d["bounded"] is True
    assert d["quiescence_bound"] == ta.quiescence_bound
    with pytest.raises(ValidationError):
        ta.interval(99)
    with pytest.raises(ValidationError):
        analyze_temporal(net, stimulus=[41])
    with pytest.raises(ValidationError):
        analyze_temporal(net, stimulus=[0], spike_caps={0: 0})


# --------------------------------------------------------------------------- #
# 2. Incremental re-analysis == from scratch
# --------------------------------------------------------------------------- #


def _mesh(seed=7, n=30):
    rng = np.random.default_rng(seed)
    net = Network()
    for _ in range(n):
        net.add_neuron(
            v_threshold=float(rng.choice([0.5, 1.5])),
            tau=float(rng.choice([0.0, 1.0])),
            one_shot=bool(rng.random() < 0.5),
        )
    for _ in range(3 * n):
        net.add_synapse(
            int(rng.integers(n)),
            int(rng.integers(n)),
            weight=float(rng.choice([-1.0, 1.0, 2.0])),
            delay=int(rng.integers(1, 6)),
        )
    return net


def _assert_same(a, b):
    assert np.array_equal(a.live, b.live)
    assert np.array_equal(a.earliest, b.earliest)
    assert np.array_equal(a.latest, b.latest)


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_repropagate_matches_scratch_after_weight_patch(seed):
    net = _mesh(seed=seed)
    c0 = net.compile()
    prev = analyze_temporal(c0, stimulus=[0, 1])
    rng = np.random.default_rng(seed + 1)
    changed = rng.choice(c0.m, size=5, replace=False)
    c1 = c0.clone() if hasattr(c0, "clone") else None
    if c1 is None:
        import copy

        c1 = copy.deepcopy(c0)
    c1.syn_weight[changed] *= -1.0  # flip excitation/inhibition
    inc = repropagate(prev, c1, changed)
    scratch = analyze_temporal(c1, stimulus=[0, 1])
    _assert_same(inc, scratch)


def test_repropagate_empty_patch_is_identity():
    net = _chain((2, 3))
    prev = analyze_temporal(net, stimulus=[0])
    inc = repropagate(prev, net.compile(), [])
    _assert_same(inc, prev)


def test_repropagate_rejects_topology_change():
    net = _chain((2, 3))
    prev = analyze_temporal(net, stimulus=[0])
    bigger = _chain((2, 3, 4))
    with pytest.raises(ValidationError):
        repropagate(prev, bigger, [0])
    with pytest.raises(ValidationError):
        repropagate(prev, net.compile(), [999])


# --------------------------------------------------------------------------- #
# 3. Certifier integration: settle/quiescence pins
# --------------------------------------------------------------------------- #


def test_certify_library_pins_settle_and_quiescence():
    report = certify_library()
    assert report.ok, report.render()
    timed = [e for e in report.entries if e.settle is not None]
    assert timed, "no entry carries a measured settle time"
    for e in timed:
        if e.budget.settle is not None:
            assert e.settle == e.budget.settle, e.render()
        if e.budget.quiescence is not None:
            assert e.quiescence == e.budget.quiescence, e.render()


def test_certify_sssp_runtime_budget():
    g = gnp_graph(16, 0.3, max_length=5, seed=2)
    entry, lint = certify_sssp(g, use_gadgets=False)
    assert lint.ok
    assert entry.ok, entry.render()
    assert entry.budget.settle is not None
    assert entry.settle is not None and entry.settle <= entry.budget.settle
    assert entry.quiescence is not None
    assert entry.quiescence <= entry.budget.quiescence


def test_certify_sssp_gadgets_pinned_non_quiescent():
    g = gnp_graph(10, 0.3, max_length=4, seed=5)
    entry, _lint = certify_sssp(g, use_gadgets=True)
    assert entry.ok, entry.render()
    assert entry.budget.unbounded
    assert entry.quiescence is None
    assert "non-quiescent" in entry.render()


def test_certify_khop_horizon_budget():
    g = gnp_graph(14, 0.3, max_length=4, seed=8)
    entry, lint = certify_khop(g, 3)
    assert lint.ok
    assert entry.ok, entry.render()
    assert entry.settle is not None
    assert entry.settle <= entry.budget.settle == max(1, g.n - 1)
    assert entry.budget.quiescence == g.n


# --------------------------------------------------------------------------- #
# 4. Golden budget regression gate
# --------------------------------------------------------------------------- #


def test_golden_budget_regression_fails_lint(tmp_path):
    from repro.cli import main

    src = json.loads(
        open("tests/golden/sssp_small.json", encoding="utf-8").read()
    )
    # intact copy passes
    good = tmp_path / "good"
    good.mkdir()
    (good / "sssp_small.json").write_text(json.dumps(src))
    assert main(["lint", "--golden", str(good), "--no-circuits"]) == 0

    # corrupt one pinned runtime budget: the gate must fail
    bad = tmp_path / "bad"
    bad.mkdir()
    mutated = json.loads(json.dumps(src))
    mutated["budgets"]["sssp_pseudo"]["runtime"] += 1
    (bad / "sssp_small.json").write_text(json.dumps(mutated))
    assert main(["lint", "--golden", str(bad), "--no-circuits"]) == 1
