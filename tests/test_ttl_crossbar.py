"""Tests of the Section 4.1 TTL algorithm deployed on the crossbar."""

import numpy as np
import pytest

from repro.embedding.ttl_crossbar import (
    compile_khop_ttl_on_crossbar,
    run_ttl_crossbar,
)
from repro.errors import EmbeddingError
from repro.workloads import WeightedDigraph, gnp_graph, path_graph
from tests.conftest import ref_khop


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_random_graphs(self, seed, k):
        g = gnp_graph(4, 0.5, max_length=3, seed=seed, ensure_source_reaches=True)
        r = run_ttl_crossbar(compile_khop_ttl_on_crossbar(g, 0, k))
        assert np.array_equal(r.dist, ref_khop(g, 0, k))

    def test_hop_budget_enforced_on_path(self):
        g = path_graph(4, max_length=2, seed=1)
        r = run_ttl_crossbar(compile_khop_ttl_on_crossbar(g, 0, 2))
        expect = ref_khop(g, 0, 2)
        assert np.array_equal(r.dist, expect)
        assert r.dist[3] == -1  # 3 hops away, budget 2

    def test_hop_vs_length_tradeoff(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 3)])
        r1 = run_ttl_crossbar(compile_khop_ttl_on_crossbar(g, 0, 1))
        r2 = run_ttl_crossbar(compile_khop_ttl_on_crossbar(g, 0, 2))
        assert r1.dist[2] == 3
        assert r2.dist[2] == 2

    def test_matches_flat_gate_level(self):
        """Crossbar deployment == flat Section 4.1 compilation."""
        from repro.algorithms import compile_khop_pseudo_gate_level
        from repro.algorithms.khop_pseudo import run_khop_gate_level

        g = gnp_graph(4, 0.6, max_length=2, seed=11, ensure_source_reaches=True)
        k = 2
        flat = run_khop_gate_level(compile_khop_pseudo_gate_level(g, 0, k))
        onchip = run_ttl_crossbar(compile_khop_ttl_on_crossbar(g, 0, k))
        assert np.array_equal(flat.dist, onchip.dist)


class TestStructure:
    def test_validation(self):
        g = path_graph(3, seed=0)
        with pytest.raises(EmbeddingError):
            compile_khop_ttl_on_crossbar(g, 9, 2)
        with pytest.raises(EmbeddingError):
            compile_khop_ttl_on_crossbar(g, 0, 0)

    def test_crossbar_footprint(self):
        g = gnp_graph(4, 0.5, max_length=3, seed=2)
        compiled = compile_khop_ttl_on_crossbar(g, 0, 3)
        # 2n^2 crossbar vertices, each a few neurons per TTL bit
        assert compiled.net.n_neurons > 2 * 16
        assert compiled.bits == 2  # TTL values 0..2

    def test_hop_tick_cost_covers_circuit_depth(self):
        g = gnp_graph(4, 0.5, max_length=3, seed=3)
        compiled = compile_khop_ttl_on_crossbar(g, 0, 2)
        assert compiled.x > max(compiled.diag_depth.values())
