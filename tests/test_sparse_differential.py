"""Differential harness for the sparse CSR simulation core.

:func:`~repro.core.sparse.simulate_sparse` promises *dense-engine* result
semantics — spike-for-spike rasters, stop metadata (``final_tick`` /
``stop_reason``), counter-seeded fault realizations, and telemetry hook
totals — on any network without pacemakers.  Hypothesis drives randomized
networks (including delay ranges wide enough to wrap the arrival ring
buffer many times), multi-wave stimuli, stop configurations, and composite
fault models, and asserts equality against:

* **dense** — exact equality on everything (the contract);
* **event-driven** — raster equality up to the common horizon (stop
  metadata legitimately differs: the event engine reports the last event
  time as its final tick).

Built on the shared strategy/assertion library in ``tests/differential.py``.
"""

from hypothesis import given, settings, strategies as st

from repro.core import simulate_dense, simulate_event_driven
from repro.core.sparse import simulate_sparse, sparse_compile
from repro.errors import UnsupportedNetworkError, ValidationError
from repro.telemetry import TraceRecorder
from tests.differential import (
    MAX_STEPS,
    assert_identical,
    assert_same_raster_upto,
    fault_models,
    random_networks,
)

import pytest


@st.composite
def stop_configs(draw, n):
    """Random terminal/watch/quiescence stop configuration."""
    terminal = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n - 1)))
    watch = list(range(n)) if draw(st.booleans()) else None
    stop_when_quiescent = draw(st.booleans())
    return terminal, watch, stop_when_quiescent


@st.composite
def multi_wave_stimuli(draw, n):
    """A multi-tick ``{tick: ids}`` stimulus schedule."""
    sched = {}
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        tick = draw(st.integers(min_value=0, max_value=10))
        ids = sched.setdefault(tick, set())
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            ids.add(draw(st.integers(min_value=0, max_value=n - 1)))
    return {t: sorted(ids) for t, ids in sched.items()}


@given(random_networks(max_delay=6), st.data())
@settings(max_examples=80)
def test_sparse_matches_dense_exactly(case, data):
    """The core contract: sparse == dense on rasters AND stop metadata."""
    net, stim = case
    terminal, watch, swq = data.draw(stop_configs(n=net.n_neurons))
    compiled = net.compile()
    rd = simulate_dense(
        compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        stop_when_quiescent=swq, record_spikes=True,
    )
    rs = simulate_sparse(
        compiled, stim, max_steps=MAX_STEPS, terminal=terminal, watch=watch,
        stop_when_quiescent=swq, record_spikes=True,
    )
    assert_identical(rd, rs)


@given(random_networks(max_delay=25), st.data())
@settings(max_examples=50)
def test_sparse_matches_dense_with_long_delays_and_schedules(case, data):
    """Wide delay spread + multi-wave stimuli: the arrival ring buffer
    wraps repeatedly and stimulus ticks interleave with in-flight spikes."""
    net, _ = case
    stim = data.draw(multi_wave_stimuli(n=net.n_neurons))
    compiled = net.compile()
    rd = simulate_dense(
        compiled, stim, max_steps=MAX_STEPS, record_spikes=True,
    )
    rs = simulate_sparse(
        compiled, stim, max_steps=MAX_STEPS, record_spikes=True,
    )
    assert_identical(rd, rs)


@given(random_networks(max_delay=8), st.data())
@settings(max_examples=60)
def test_sparse_matches_dense_under_faults(case, data):
    """Counter-seeded fault realizations are identical spike-for-spike:
    drops, spurious forces, and stuck-at windows all hash (seed, tick,
    entity), so per-delay bucketing must not change a single decision."""
    net, stim = case
    faults = data.draw(fault_models(n=net.n_neurons))
    compiled = net.compile()
    rd = simulate_dense(
        compiled, stim, max_steps=MAX_STEPS, record_spikes=True, faults=faults,
    )
    rs = simulate_sparse(
        compiled, stim, max_steps=MAX_STEPS, record_spikes=True, faults=faults,
    )
    assert_identical(rd, rs)


@given(random_networks(max_delay=8), st.data())
@settings(max_examples=40)
def test_sparse_hook_totals_match_dense(case, data):
    """Telemetry hooks observe the same event stream: spike, delivery,
    drop, and fault-event totals all agree with the dense engine."""
    net, stim = case
    faults = data.draw(fault_models(n=net.n_neurons))
    compiled = net.compile()
    dense_rec = TraceRecorder()
    simulate_dense(
        compiled, stim, max_steps=MAX_STEPS, faults=faults, hooks=dense_rec,
    )
    sparse_rec = TraceRecorder()
    simulate_sparse(
        compiled, stim, max_steps=MAX_STEPS, faults=faults, hooks=sparse_rec,
    )
    assert sparse_rec.total_spikes == dense_rec.total_spikes
    assert sparse_rec.total_deliveries == dense_rec.total_deliveries
    assert sparse_rec.fault_totals() == dense_rec.fault_totals()


@given(random_networks(max_delay=10))
@settings(max_examples=40)
def test_sparse_matches_event_driven(case):
    """Cross-check against the event engine up to the common horizon."""
    net, stim = case
    compiled = net.compile()
    rs = simulate_sparse(
        compiled, stim, max_steps=MAX_STEPS, record_spikes=True,
    )
    re = simulate_event_driven(
        compiled, stim, max_steps=MAX_STEPS, record_spikes=True,
    )
    assert_same_raster_upto(rs, re)


def test_sparse_rejects_pacemakers():
    from repro.core import Network

    net = Network()
    net.add_neuron(v_reset=1.0, v_threshold=0.5)  # pacemaker
    with pytest.raises(UnsupportedNetworkError):
        simulate_sparse(net, [0], max_steps=5)


def test_sparse_rejects_negative_max_steps():
    from repro.core import Network

    net = Network()
    net.add_neuron()
    with pytest.raises(ValidationError):
        simulate_sparse(net, [0], max_steps=-1)


def test_sparse_artifact_is_memoized_and_delay_bucketed():
    from repro.core import Network

    net = Network()
    a = net.add_neuron()
    b = net.add_neuron()
    c = net.add_neuron()
    net.add_synapse(a, b, weight=1.0, delay=3)
    net.add_synapse(a, c, weight=1.0, delay=1)
    net.add_synapse(b, c, weight=1.0, delay=3)
    compiled = net.compile()
    art = sparse_compile(compiled)
    assert sparse_compile(compiled) is art  # memoized on the instance
    assert art.delays.tolist() == [1, 3]
    assert [bkt.delay for bkt in art.buckets] == [1, 3]
    assert [bkt.nnz for bkt in art.buckets] == [1, 2]
    assert art.nnz == compiled.m
    # each bucket's CSR matrix row maps a source to its same-delay targets
    d3 = art.buckets[1]
    assert d3.srcs.tolist() == [a, b]
    assert d3.matrix.shape == (2, compiled.n)
    assert d3.matrix.getrow(0).indices.tolist() == [b]
