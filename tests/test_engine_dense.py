"""Behavioral tests of the dense engine against Definitions 1-2."""

import numpy as np
import pytest

from repro.core import Network, StopReason, simulate_dense
from repro.errors import ValidationError


def chain(delays, **neuron_kwargs):
    """Linear chain of neurons with the given synapse delays."""
    net = Network()
    ids = [net.add_neuron(**neuron_kwargs) for _ in range(len(delays) + 1)]
    for i, d in enumerate(delays):
        net.add_synapse(ids[i], ids[i + 1], delay=d)
    return net, ids


class TestPropagation:
    def test_single_hop_delay(self):
        net, ids = chain([4])
        r = simulate_dense(net, [ids[0]], max_steps=10)
        assert r.first_spike.tolist() == [0, 4]

    def test_chain_delays_accumulate(self):
        net, ids = chain([2, 3, 5])
        r = simulate_dense(net, [ids[0]], max_steps=20)
        assert r.first_spike.tolist() == [0, 2, 5, 10]

    def test_subthreshold_input_accumulates_with_no_decay(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(v_threshold=1.5, tau=0.0)
        net.add_synapse(a, b, weight=1.0, delay=1)
        net.add_synapse(a, b, weight=1.0, delay=3)
        # two unit inputs at ticks 1 and 3 integrate to 2 > 1.5
        r = simulate_dense(net, [a], max_steps=10)
        assert r.first_spike[b] == 3

    def test_decay_tau_one_forgets_between_ticks(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(v_threshold=1.5, tau=1.0)
        net.add_synapse(a, b, weight=1.0, delay=1)
        net.add_synapse(a, b, weight=1.0, delay=3)
        r = simulate_dense(net, [a], max_steps=10)
        assert r.first_spike[b] == -1  # threshold gate never sees both

    def test_fractional_decay(self):
        # v after input 1.0 decays by half each tick; a second input of 1.0
        # arriving 1 tick later reaches 1.5, crossing a 1.4 threshold
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(v_threshold=1.4, tau=0.5)
        net.add_synapse(a, b, weight=1.0, delay=1)
        net.add_synapse(a, b, weight=1.0, delay=2)
        r = simulate_dense(net, [a], max_steps=10)
        assert r.first_spike[b] == 2

    def test_threshold_strictly_greater(self):
        net = Network()
        a = net.add_neuron()
        b = net.add_neuron(v_threshold=1.0)  # weight-1 input == threshold
        net.add_synapse(a, b, weight=1.0, delay=1)
        r = simulate_dense(net, [a], max_steps=5)
        assert r.first_spike[b] == -1

    def test_voltage_resets_after_fire(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(v_threshold=0.5, tau=0.0)
        net.add_synapse(a, b, weight=10.0, delay=1)
        r = simulate_dense(net, [a], max_steps=5, probe_voltages=[b])
        assert r.first_spike[b] == 1
        assert r.voltages[b][1] == 0.0  # reset, not 10

    def test_inhibition_blocks_firing(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(v_threshold=0.5)
        net.add_synapse(a, b, weight=1.0, delay=2)
        net.add_synapse(a, b, weight=-1.0, delay=2)
        r = simulate_dense(net, [a], max_steps=6)
        assert r.first_spike[b] == -1

    def test_simultaneous_deliveries_sum(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(tau=1.0)
        c = net.add_neuron(v_threshold=1.5)
        net.add_synapse(a, c, weight=1.0, delay=2)
        net.add_synapse(b, c, weight=1.0, delay=2)
        r = simulate_dense(net, [a, b], max_steps=5)
        assert r.first_spike[c] == 2

    def test_self_loop_latch_fires_forever(self):
        net = Network()
        m = net.add_neuron(tau=1.0)
        net.add_synapse(m, m, weight=1.0, delay=1)
        r = simulate_dense(net, [m], max_steps=10, stop_when_quiescent=False)
        assert r.spike_counts[m] == 11  # ticks 0..10

    def test_one_shot_suppresses_refires(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(one_shot=True)
        net.add_synapse(a, b, weight=1.0, delay=1)
        net.add_synapse(a, b, weight=1.0, delay=4)
        r = simulate_dense(net, [a], max_steps=10)
        assert r.spike_counts[b] == 1
        assert r.first_spike[b] == 1

    def test_pacemaker_fires_every_tick(self):
        net = Network()
        p = net.add_neuron(v_reset=1.0, v_threshold=0.5, tau=1.0)
        r = simulate_dense(net, None, max_steps=5, stop_when_quiescent=False)
        assert r.spike_counts[p] == 5  # fires ticks 1..5 (v(0) not compared)


class TestStimulus:
    def test_multi_wave_stimulus(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(tau=1.0)
        net.add_synapse(a, b, delay=1)
        r = simulate_dense(net, {0: [a], 5: [a]}, max_steps=10, record_spikes=True)
        assert r.spike_counts[a] == 2
        assert sorted(t for t, ids in r.spike_events.items() if b in ids.tolist()) == [1, 6]

    def test_stimulus_out_of_range(self):
        net = Network()
        net.add_neuron()
        with pytest.raises(ValidationError):
            simulate_dense(net, [5], max_steps=3)

    def test_negative_stimulus_tick(self):
        net = Network()
        net.add_neuron()
        with pytest.raises(ValidationError):
            simulate_dense(net, {-1: [0]}, max_steps=3)

    def test_induced_spike_overrides_one_shot(self):
        # induced (external) spikes fire unconditionally, even re-fires
        net = Network()
        a = net.add_neuron(one_shot=True, tau=1.0)
        r = simulate_dense(net, {0: [a], 3: [a]}, max_steps=6)
        assert r.spike_counts[a] == 2


class TestStops:
    def test_terminal_stop(self):
        net, ids = chain([3, 3, 3])
        net.set_terminal(ids[2])
        r = simulate_dense(net, [ids[0]], max_steps=50)
        assert r.stop_reason is StopReason.TERMINAL
        assert r.final_tick == 6
        assert r.first_spike[ids[3]] == -1  # never reached

    def test_terminal_override_param(self):
        net, ids = chain([3, 3, 3])
        r = simulate_dense(net, [ids[0]], max_steps=50, terminal=ids[1])
        assert r.stop_reason is StopReason.TERMINAL
        assert r.final_tick == 3

    def test_terminal_in_stimulus(self):
        net, ids = chain([2])
        r = simulate_dense(net, [ids[0]], max_steps=10, terminal=ids[0])
        assert r.stop_reason is StopReason.TERMINAL
        assert r.final_tick == 0

    def test_watch_set_stop(self):
        net, ids = chain([2, 2, 2])
        r = simulate_dense(net, [ids[0]], max_steps=50, watch=ids[:3])
        assert r.stop_reason is StopReason.WATCH_SET
        assert r.final_tick == 4

    def test_quiescent_stop(self):
        net, ids = chain([2, 2])
        r = simulate_dense(net, [ids[0]], max_steps=100)
        assert r.stop_reason is StopReason.QUIESCENT
        assert r.final_tick <= 6

    def test_max_steps_stop(self):
        net, ids = chain([10])
        r = simulate_dense(net, [ids[0]], max_steps=4)
        assert r.stop_reason is StopReason.MAX_STEPS
        assert r.first_spike[ids[1]] == -1

    def test_negative_max_steps(self):
        net = Network()
        net.add_neuron()
        with pytest.raises(ValidationError):
            simulate_dense(net, None, max_steps=-1)


class TestRecording:
    def test_record_spikes_full_history(self):
        net, ids = chain([1, 2])
        r = simulate_dense(net, [ids[0]], max_steps=10, record_spikes=True)
        assert r.spike_events[0].tolist() == [ids[0]]
        assert r.spike_events[1].tolist() == [ids[1]]
        assert r.spike_events[3].tolist() == [ids[2]]

    def test_spike_times_requires_recording(self):
        net, ids = chain([1])
        r = simulate_dense(net, [ids[0]], max_steps=5)
        with pytest.raises(ValueError):
            r.spike_times(ids[0])

    def test_voltage_probe_trace(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(v_threshold=5.0, tau=0.0)
        net.add_synapse(a, b, weight=2.0, delay=1)
        r = simulate_dense(net, [a], max_steps=3, probe_voltages=[b],
                           stop_when_quiescent=False)
        assert r.voltages[b].tolist() == [0.0, 2.0, 2.0, 2.0]

    def test_total_spikes(self):
        net, ids = chain([1, 1, 1])
        r = simulate_dense(net, [ids[0]], max_steps=10)
        assert r.total_spikes == 4


class TestDelayRingBuffer:
    """Stress the circular delivery buffer around its wrap boundary."""

    def test_max_delay_boundary(self):
        # delays D and 1 together: slot (t + D) % (D+1) must not alias
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(tau=1.0)
        c = net.add_neuron(tau=1.0)
        D = 7
        net.add_synapse(a, b, delay=D)
        net.add_synapse(a, c, delay=1)
        r = simulate_dense(net, [a], max_steps=20)
        assert r.first_spike[b] == D
        assert r.first_spike[c] == 1

    def test_repeated_wraps(self):
        # a latch drives a delay-D synapse every tick: the target must fire
        # every tick from D on, proving slots are cleared after consumption
        net = Network()
        m = net.add_neuron(tau=1.0)
        t = net.add_neuron(tau=1.0)
        net.add_synapse(m, m, delay=1)
        D = 5
        net.add_synapse(m, t, delay=D)
        horizon = 4 * D
        r = simulate_dense(net, [m], max_steps=horizon,
                           stop_when_quiescent=False)
        assert r.first_spike[t] == D
        assert r.spike_counts[t] == horizon - D + 1

    def test_same_tick_deliveries_from_different_delays(self):
        # spikes at t=0 (delay 6) and t=3 (delay 3) both land at t=6
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(tau=1.0)
        c = net.add_neuron(v_threshold=1.5, tau=1.0)
        net.add_synapse(a, c, weight=1.0, delay=6)
        net.add_synapse(b, c, weight=1.0, delay=3)
        r = simulate_dense(net, {0: [a], 3: [b]}, max_steps=10)
        assert r.first_spike[c] == 6


class TestProbeValidation:
    """Probe ids are deduplicated and range-checked up front."""

    def test_out_of_range_probe_raises_validation_error(self):
        net, ids = chain([1])
        with pytest.raises(ValidationError, match="out of range"):
            simulate_dense(net, [ids[0]], max_steps=5, probe_voltages=[99])

    def test_negative_probe_rejected(self):
        net, ids = chain([1])
        with pytest.raises(ValidationError, match="out of range"):
            simulate_dense(net, [ids[0]], max_steps=5, probe_voltages=[-1])

    def test_duplicate_probes_deduplicated(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(v_threshold=5.0, tau=0.0)
        net.add_synapse(a, b, weight=2.0, delay=1)
        r = simulate_dense(net, [a], max_steps=3, probe_voltages=[b, b, a, b],
                           stop_when_quiescent=False)
        assert sorted(r.voltages) == [a, b]
        assert r.voltages[b].tolist() == [0.0, 2.0, 2.0, 2.0]

    def test_probe_validation_through_dispatcher(self):
        from repro.core import simulate

        net, ids = chain([1])
        with pytest.raises(ValidationError, match="out of range"):
            simulate(net, [ids[0]], engine="dense", max_steps=5,
                     probe_voltages=[net.n_neurons])
