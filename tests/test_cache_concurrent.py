"""Concurrency tests for the build cache and the serving result cache.

The build cache is shared by every thread of a serving worker pool, so its
invariants — LRU eviction order, hit/miss/eviction accounting, single
build per key, and safe ``clear()`` — must hold under concurrent batched
access, not just in the single-threaded unit tests of
``test_batch_engine.py``.
"""

import threading

import numpy as np

from repro.core import BuildCache, Network, simulate_batch
from repro.core.cache import default_build_cache
from repro.service import QueryServer, ServiceClient, TTLResultCache
from repro.workloads import gnp_graph


def build_chain(k):
    net = Network()
    ids = [net.add_neuron(one_shot=True) for _ in range(k)]
    for a, b in zip(ids, ids[1:]):
        net.add_synapse(a, b, delay=1)
    return net


class TestBuildCacheConcurrent:
    def test_single_build_per_key_under_contention(self):
        cache = BuildCache(maxsize=8)
        builds = []
        build_lock = threading.Lock()
        start = threading.Barrier(8)

        def build():
            with build_lock:
                builds.append(1)
            return build_chain(3)

        def worker():
            start.wait()
            for _ in range(50):
                cache.get_or_build("key", build)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # the lock is held across build(), so exactly one build ever runs
        assert len(builds) == 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 8 * 50 - 1

    def test_eviction_order_preserved_under_concurrent_churn(self):
        cache = BuildCache(maxsize=4)
        start = threading.Barrier(4)
        errors = []

        def worker(tid):
            start.wait()
            try:
                for i in range(100):
                    key = f"k{(tid * 7 + i) % 10}"
                    net = cache.get_or_build(key, lambda: build_chain(2))
                    assert net.n_neurons == 2
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["entries"] <= 4
        assert stats["evictions"] == stats["misses"] - stats["entries"]
        # LRU invariant still holds serially after the churn: a fresh run of
        # 4 keys leaves exactly those 4 resident, oldest evicted first
        for key in ("a", "b", "c", "d"):
            cache.get_or_build(key, lambda: build_chain(2))
        hits_before = cache.stats()["hits"]
        for key in ("a", "b", "c", "d"):
            cache.get_or_build(key, lambda: build_chain(2))
        assert cache.stats()["hits"] == hits_before + 4
        cache.get_or_build("e", lambda: build_chain(2))  # evicts "a"
        misses_before = cache.stats()["misses"]
        cache.get_or_build("a", lambda: build_chain(2))
        assert cache.stats()["misses"] == misses_before + 1

    def test_clear_while_batched_queries_run(self):
        """clear() racing simulate_batch-driven lookups never corrupts."""
        g = gnp_graph(12, 0.3, max_length=5, seed=2, ensure_source_reaches=True)
        srv = QueryServer(workers=2, max_batch=4, linger_s=0.001)
        srv.register_graph("g", g)
        stop = threading.Event()
        errors = []

        def clearer():
            while not stop.is_set():
                default_build_cache.clear()

        with srv:
            cli = ServiceClient(srv)
            t = threading.Thread(target=clearer)
            t.start()
            try:
                expected = None
                for round_ in range(10):
                    tickets = [cli.submit_sssp("g", s) for s in range(6)]
                    results = [tk.result(30) for tk in tickets]
                    for r in results:
                        if not r.ok:
                            errors.append(r.error)
                    dists = np.stack([r.dist for r in results])
                    if expected is None:
                        expected = dists
                    elif not np.array_equal(dists, expected):
                        errors.append(f"round {round_} diverged")
            finally:
                stop.set()
                t.join()
        assert not errors

    def test_concurrent_simulate_batch_through_default_cache(self):
        """Raw batched runs from many threads agree and stay consistent."""
        from repro.algorithms.sssp_pseudo import sssp_plan

        g = gnp_graph(15, 0.3, max_length=6, seed=8, ensure_source_reaches=True)
        plan = sssp_plan(g, 0)
        kw = dict(max_steps=plan.max_steps, terminal=plan.terminal,
                  watch=list(plan.watch) if plan.watch else None)
        reference = simulate_batch(plan.net, [list(plan.stimulus)] * 3, **kw)
        errors = []
        start = threading.Barrier(6)

        def worker():
            start.wait()
            for _ in range(5):
                p = sssp_plan(g, 0)  # build-cache round trip
                out = simulate_batch(p.net, [list(p.stimulus)] * 3, **kw)
                for r0, r1 in zip(out, reference):
                    if not np.array_equal(r0.first_spike, r1.first_spike):
                        errors.append("diverged")

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestTTLResultCacheConcurrent:
    def test_concurrent_put_get_clear(self):
        cache = TTLResultCache(maxsize=16, ttl_s=100.0)
        errors = []
        start = threading.Barrier(6)

        def worker(tid):
            start.wait()
            try:
                for i in range(200):
                    key = (tid, i % 20)
                    cache.put(key, i)
                    got = cache.get(key)
                    assert got is None or isinstance(got, int)
                    if i % 50 == 0:
                        cache.clear()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 6 * 200
