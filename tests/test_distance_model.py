"""Tests of the DISTANCE machine: geometry, register file, algorithms,
and the Theorem 6.1/6.2 lower bounds."""

import numpy as np
import pytest

from repro.distance_model import (
    DistanceMachine,
    GridMemory,
    bellman_ford_khop_distance,
    dijkstra_distance,
    read_input_distance,
    read_lower_bound_2d,
    read_lower_bound_3d,
    bellman_ford_lower_bound,
    spiral_positions,
)
from repro.errors import MachineError, ValidationError
from repro.workloads import gnp_graph
from tests.conftest import ref_khop, ref_sssp


class TestSpiral:
    def test_positions_unique(self):
        pts = spiral_positions(500)
        assert len(set(pts)) == 500

    def test_starts_at_origin(self):
        assert spiral_positions(1) == [(0, 0)]

    def test_dense_packing(self):
        """N points span O(sqrt N) extent — the density the bound assumes."""
        pts = spiral_positions(441)  # 21x21
        max_coord = max(max(abs(x), abs(y)) for x, y in pts)
        assert max_coord <= 11

    def test_3d_positions_unique_and_dense(self):
        pts = spiral_positions(343, dims=3)  # 7x7x7
        assert len(set(pts)) == 343
        max_coord = max(max(abs(c) for c in p) for p in pts)
        assert max_coord <= 5

    def test_bad_dims(self):
        with pytest.raises(MachineError):
            spiral_positions(10, dims=4)


class TestGridMemory:
    def test_block_layout_registers_near_origin(self):
        mem = GridMemory(4)
        mem.alloc("a", 100)
        mem.finalize()
        for r in mem.register_positions:
            assert abs(r[0]) + abs(r[1]) <= 2

    def test_scattered_layout_spreads_registers(self):
        mem = GridMemory(4, layout="scattered")
        mem.alloc("a", 400)
        mem.finalize()
        spread = max(abs(r[0]) + abs(r[1]) for r in mem.register_positions)
        assert spread > 5

    def test_word_positions_disjoint_from_registers(self):
        mem = GridMemory(3)
        mem.alloc("a", 50)
        mem.finalize()
        regs = set(mem.register_positions)
        words = {mem.position_of("a", i) for i in range(50)}
        assert not regs & words

    def test_alloc_after_finalize_rejected(self):
        mem = GridMemory(2)
        mem.finalize()
        with pytest.raises(MachineError):
            mem.alloc("late", 5)

    def test_duplicate_alloc_rejected(self):
        mem = GridMemory(2)
        mem.alloc("a", 5)
        with pytest.raises(MachineError):
            mem.alloc("a", 5)

    def test_bounds_checked(self):
        mem = GridMemory(2)
        mem.alloc("a", 5)
        mem.finalize()
        with pytest.raises(MachineError):
            mem.position_of("a", 5)

    def test_bad_layout(self):
        with pytest.raises(MachineError):
            GridMemory(2, layout="ring")

    def test_needs_registers(self):
        with pytest.raises(MachineError):
            GridMemory(0)


class TestMachine:
    def test_register_hit_is_free(self):
        mc = DistanceMachine(2)
        mc.alloc("a", 10)
        mc.finalize()
        mc.read("a", 7)
        cost1 = mc.movement_cost
        mc.read("a", 7)  # resident: no extra movement
        assert mc.movement_cost == cost1

    def test_lru_eviction_recharges(self):
        mc = DistanceMachine(1)  # single register: every new word evicts
        mc.alloc("a", 10)
        mc.finalize()
        mc.read("a", 7)
        c1 = mc.movement_cost
        mc.read("a", 3)
        c2 = mc.movement_cost
        mc.read("a", 7)  # evicted; pays again
        assert mc.movement_cost > c2 > c1

    def test_write_charges_register_to_destination(self):
        mc = DistanceMachine(2)
        mc.alloc("a", 50)
        mc.finalize()
        before = mc.movement_cost
        mc.write("a", 49, 123)
        assert mc.movement_cost > before
        assert mc.read("a", 49) == 123

    def test_binop_computes_and_stores(self):
        mc = DistanceMachine(4)
        mc.alloc_from("a", [5])
        mc.alloc_from("b", [7])
        mc.alloc("out", 1)
        mc.finalize()
        result = mc.binop(lambda x, y: x + y, ("a", 0), ("b", 0), ("out", 0))
        assert result == 12
        assert mc.snapshot("out") == [12]

    def test_operate_before_finalize_rejected(self):
        mc = DistanceMachine(2)
        mc.alloc("a", 5)
        with pytest.raises(MachineError):
            mc.read("a", 0)

    def test_movement_cost_farther_words_cost_more(self):
        mc = DistanceMachine(1)
        mc.alloc("a", 1000)
        mc.finalize()
        mc.read("a", 0)
        near = mc.movement_cost
        mc2 = DistanceMachine(1)
        mc2.alloc("a", 1000)
        mc2.finalize()
        mc2.read("a", 999)
        far = mc2.movement_cost
        assert far > near


class TestDistanceAlgorithms:
    @pytest.mark.parametrize("seed", range(3))
    def test_dijkstra_correct(self, seed):
        g = gnp_graph(15, 0.25, max_length=5, seed=seed)
        dist, cost = dijkstra_distance(g, 0)
        assert np.array_equal(dist, ref_sssp(g, 0))
        assert cost > 0

    @pytest.mark.parametrize("k", [1, 3])
    def test_bellman_ford_correct(self, k):
        g = gnp_graph(12, 0.3, max_length=4, seed=5)
        dist, cost = bellman_ford_khop_distance(g, 0, k)
        assert np.array_equal(dist, ref_khop(g, 0, k))
        assert cost > 0

    def test_dijkstra_target_mode(self, small_graph):
        dist, _ = dijkstra_distance(small_graph, 0, target=1)
        assert dist[1] == 2

    def test_measured_read_respects_thm61(self):
        g = gnp_graph(40, 0.2, max_length=5, seed=2)
        for c in (1, 4, 9):
            measured = read_input_distance(g, num_registers=c)
            words = 2 * g.m + g.n + 1
            assert measured >= read_lower_bound_2d(words, c)

    def test_measured_bf_respects_thm62(self):
        g = gnp_graph(25, 0.25, max_length=4, seed=3)
        for k in (1, 4):
            _, cost = bellman_ford_khop_distance(g, 0, k, num_registers=4)
            assert cost >= bellman_ford_lower_bound(g.m, k, 4)

    def test_movement_grows_superlinearly_with_m(self):
        """The m^{3/2} shape: quadrupling edges should much more than
        quadruple movement."""
        costs = {}
        for n, p in [(20, 0.2), (40, 0.2)]:
            g = gnp_graph(n, p, max_length=4, seed=7)
            costs[g.m] = read_input_distance(g, num_registers=2)
        (m1, c1), (m2, c2) = sorted(costs.items())
        assert c2 / c1 > (m2 / m1) ** 1.2  # strictly superlinear

    def test_scattered_layout_cheaper_than_block(self):
        g = gnp_graph(30, 0.3, max_length=4, seed=8)
        block = read_input_distance(g, num_registers=9, layout="block")
        scattered = read_input_distance(g, num_registers=9, layout="scattered")
        assert scattered < block

    def test_3d_cheaper_than_2d(self):
        g = gnp_graph(30, 0.3, max_length=4, seed=9)
        d2 = read_input_distance(g, num_registers=4, dims=2)
        d3 = read_input_distance(g, num_registers=4, dims=3)
        assert d3 < d2

    def test_validation(self, small_graph):
        with pytest.raises(ValidationError):
            dijkstra_distance(small_graph, 99)
        with pytest.raises(ValidationError):
            bellman_ford_khop_distance(small_graph, 0, -1)


class TestBoundFormulas:
    def test_thm61_value(self):
        assert read_lower_bound_2d(100, 1) == pytest.approx(100 / 2 * 10 / 4)

    def test_thm62_is_k_times_thm61(self):
        assert bellman_ford_lower_bound(64, 5, 4) == 5 * read_lower_bound_2d(64, 4)

    def test_more_registers_weaken_bound(self):
        assert read_lower_bound_2d(1000, 16) < read_lower_bound_2d(1000, 1)

    def test_3d_weaker_than_2d(self):
        assert read_lower_bound_3d(10**6, 1) < read_lower_bound_2d(10**6, 1)

    def test_monotone_in_m(self):
        values = [read_lower_bound_2d(m, 2) for m in (10, 100, 1000)]
        assert values == sorted(values)

    def test_zero_input(self):
        assert read_lower_bound_2d(0, 1) == 0
        assert read_lower_bound_3d(0, 1) == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            read_lower_bound_2d(-1, 1)
        with pytest.raises(ValidationError):
            read_lower_bound_2d(10, 0)
        with pytest.raises(ValidationError):
            bellman_ford_lower_bound(10, -1, 1)


class TestMatvecDistance:
    def test_correct_product(self):
        import numpy as np

        from repro.distance_model import matvec_distance

        rng = np.random.default_rng(3)
        A = rng.integers(-4, 5, size=(7, 7))
        x = rng.integers(-4, 5, size=7)
        y, cost = matvec_distance(A, x)
        assert np.array_equal(y, A @ x)
        assert cost > 0

    def test_cubic_scaling(self):
        import numpy as np

        from repro.distance_model import matvec_distance

        rng = np.random.default_rng(4)
        costs = {}
        for n in (8, 16):
            A = rng.integers(1, 5, size=(n, n))
            x = rng.integers(1, 5, size=n)
            _, costs[n] = matvec_distance(A, x)
        # doubling n must cost much more than 4x (the O(n^3) effect)
        assert costs[16] > 6 * costs[8]

    def test_validation(self):
        import numpy as np

        from repro.distance_model import matvec_distance

        with pytest.raises(ValidationError):
            matvec_distance(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValidationError):
            matvec_distance(np.zeros((3, 3)), np.zeros(2))
