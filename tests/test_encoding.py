"""Codec tests for spike-message encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits import bits_from_int, int_from_bits
from repro.circuits.encoding import bit_width_for
from repro.errors import CircuitError


class TestBits:
    def test_lsb_first(self):
        assert bits_from_int(6, 4) == [0, 1, 1, 0]

    def test_zero(self):
        assert bits_from_int(0, 3) == [0, 0, 0]

    def test_too_wide_value(self):
        with pytest.raises(CircuitError):
            bits_from_int(8, 3)

    def test_negative_value(self):
        with pytest.raises(CircuitError):
            bits_from_int(-1, 3)

    def test_int_from_bits_accepts_bools(self):
        assert int_from_bits([True, False, True]) == 5

    def test_int_from_bits_rejects_nonbits(self):
        with pytest.raises(CircuitError):
            int_from_bits([0, 2, 1])

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, v):
        assert int_from_bits(bits_from_int(v, 16)) == v


class TestBitWidth:
    @pytest.mark.parametrize(
        "value,width", [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9)]
    )
    def test_widths(self, value, width):
        assert bit_width_for(value) == width

    def test_negative_rejected(self):
        with pytest.raises(CircuitError):
            bit_width_for(-1)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_value_fits_in_width(self, v):
        w = bit_width_for(v)
        assert v < (1 << w)
