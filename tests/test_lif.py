"""Tests for LIF parameterization (Definitions 1-2 conventions)."""

import pytest

from repro.core import DEFAULT_DELTA, NeuronParams, threshold_for_count
from repro.errors import ValidationError


class TestNeuronParams:
    def test_defaults(self):
        p = NeuronParams()
        assert p.v_reset == 0.0
        assert p.v_threshold == 0.5
        assert p.tau == 0.0
        assert not p.one_shot

    @pytest.mark.parametrize("tau", [-0.1, 1.1, 2.0])
    def test_tau_out_of_range(self, tau):
        with pytest.raises(ValidationError):
            NeuronParams(tau=tau)

    @pytest.mark.parametrize("tau", [0.0, 0.5, 1.0])
    def test_tau_valid_range(self, tau):
        assert NeuronParams(tau=tau).tau == tau

    def test_pacemaker_detection(self):
        assert NeuronParams(v_reset=1.0, v_threshold=0.5).is_pacemaker
        assert not NeuronParams(v_reset=0.0, v_threshold=0.5).is_pacemaker
        # boundary: reset == threshold does not spontaneously fire (strict >)
        assert not NeuronParams(v_reset=0.5, v_threshold=0.5).is_pacemaker

    def test_frozen(self):
        p = NeuronParams()
        with pytest.raises(AttributeError):
            p.tau = 0.5


class TestThresholdForCount:
    @pytest.mark.parametrize("k", [1, 2, 5, 100])
    def test_halfway_placement(self, k):
        t = threshold_for_count(k)
        assert k - 1 < t < k  # k unit inputs fire it, k-1 do not

    def test_invalid_count(self):
        with pytest.raises(ValidationError):
            threshold_for_count(0)


def test_minimum_delay_is_one_tick():
    assert DEFAULT_DELTA == 1
