"""Property harness: temporal intervals are sound for the real engines.

The contract of :func:`repro.staticcheck.analyze_temporal` is *soundness*,
not tightness: for any fault-free run of any engine,

* a neuron that fires is marked live,
* every observed spike tick falls inside ``[earliest, latest]``,
* a quiescence-stopped run never runs past the certified bound.

This harness hammers that contract with the shared random-network strategy
(recurrent topologies, inhibition, one-shot neurons, mixed delays) on both
the dense reference engine and the sparse CSR core.  Derandomized in CI
via the ``ci`` Hypothesis profile in ``conftest.py``.
"""

import numpy as np
from hypothesis import given, settings

from repro.core.engine import simulate_dense
from repro.core.result import StopReason
from repro.core.sparse import simulate_sparse
from repro.staticcheck import analyze_temporal

from .differential import random_networks

#: Tick budget: large enough that bounded examples reach quiescence (the
#: strategy's worst case is far below this), small enough that unbounded
#: oscillators stay cheap.
MAX_STEPS = 80

N_EXAMPLES = 150


def _check_soundness(net, stim, simulate):
    compiled = net.compile()
    ta = analyze_temporal(compiled, stimulus=stim)
    res = simulate(
        compiled,
        stim,
        max_steps=MAX_STEPS,
        record_spikes=True,
        stop_when_quiescent=True,
    )

    # every observed spike lies inside its neuron's static interval
    for tick, ids in (res.spike_events or {}).items():
        for nid in ids.tolist():
            assert ta.live[nid], (
                f"neuron {nid} fired at tick {tick} but is statically dead"
            )
            lo, hi = ta.earliest[nid], ta.latest[nid]
            assert lo <= tick, f"neuron {nid}: spike at {tick} before earliest {lo}"
            assert tick <= hi, f"neuron {nid}: spike at {tick} after latest {hi}"

    # spike counts respect the one_shot cap the latest pass relies on
    caused = res.spike_counts - np.isin(
        np.arange(compiled.n), np.asarray(stim)
    ).astype(np.int64)
    assert (caused[compiled.one_shot] <= 1).all()

    # a provably-quiescent network actually quiesces within the bound
    q = ta.quiescence_bound
    if q is not None and q <= MAX_STEPS:
        assert res.stop_reason is not StopReason.MAX_STEPS
        assert res.final_tick <= q, (
            f"run ended at tick {res.final_tick}, certified bound {q}"
        )
    return ta, res


@settings(max_examples=N_EXAMPLES)
@given(case=random_networks())
def test_intervals_sound_on_dense_engine(case):
    net, stim = case
    _check_soundness(net, stim, simulate_dense)


@settings(max_examples=N_EXAMPLES)
@given(case=random_networks(max_delay=9))
def test_intervals_sound_on_sparse_engine(case):
    net, stim = case
    _check_soundness(net, stim, simulate_sparse)


@settings(max_examples=60)
@given(case=random_networks())
def test_dense_and_sparse_agree_inside_one_analysis(case):
    """One analysis covers both engines: identical rasters, one bound."""
    net, stim = case
    ta_dense, res_dense = _check_soundness(net, stim, simulate_dense)
    ta_sparse, res_sparse = _check_soundness(net, stim, simulate_sparse)
    assert np.array_equal(ta_dense.live, ta_sparse.live)
    assert np.array_equal(res_dense.first_spike, res_sparse.first_spike)
    assert np.array_equal(res_dense.spike_counts, res_sparse.spike_counts)
