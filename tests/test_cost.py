"""Unit tests of the CostReport accounting type."""

import pytest

from repro.core.cost import CostReport


def make(**overrides) -> CostReport:
    base = dict(
        algorithm="x",
        simulated_ticks=100,
        loading_ticks=40,
        neuron_count=10,
        synapse_count=20,
        spike_count=5,
    )
    base.update(overrides)
    return CostReport(**base)


class TestTotalTime:
    def test_sum_of_parts(self):
        assert make().total_time == 140

    def test_embedding_factor_multiplies_spiking_only(self):
        c = make(embedding_factor=7)
        assert c.total_time == 7 * 100 + 40  # loading stays O(m)

    def test_zero_ticks(self):
        assert make(simulated_ticks=0).total_time == 40


class TestWithEmbedding:
    def test_charges_n(self):
        charged = make().with_embedding(16)
        assert charged.embedding_factor == 16
        assert charged.total_time == 16 * 100 + 40
        assert charged.algorithm.endswith("+crossbar")

    def test_composes_multiplicatively(self):
        twice = make().with_embedding(4).with_embedding(3)
        assert twice.embedding_factor == 12

    def test_nonpositive_n_clamped(self):
        assert make().with_embedding(0).embedding_factor == 1

    def test_original_untouched(self):
        c = make()
        c.with_embedding(9)
        assert c.embedding_factor == 1

    def test_extras_copied_not_shared(self):
        c = make(extras={"a": 1.0})
        d = c.with_embedding(2)
        d.extras["a"] = 2.0
        assert c.extras["a"] == 1.0


class TestOptionalFields:
    def test_round_fields(self):
        c = make(rounds=5, round_length=7)
        assert c.rounds == 5 and c.round_length == 7

    def test_message_bits_carried_through_embedding(self):
        c = make(message_bits=9).with_embedding(3)
        assert c.message_bits == 9
