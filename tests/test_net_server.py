"""Tests of the socket front end: wire differential, framing, signals.

The load-bearing assertion is the wire differential: every answer served
over a real TCP socket — through JSONL framing, the asyncio loop, the
executor, the coalescing queue, and back — must match a solo in-process
run of the same query.  The signal tests run the actual CLI in a
subprocess and pin the exit-code contract (``128 + signum``) plus the
graceful-drain guarantee (accepted requests are answered, not dropped).
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

import repro
from repro.baselines.dijkstra import dijkstra
from repro.service import QueryRequest, QueryServer
from repro.service.net import NetClient, NetServer, encode_frame
from repro.service.net.bench import run_net_loadgen
from repro.workloads import gnp_graph, grid_graph

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@pytest.fixture(scope="module")
def graphs():
    return {
        "grid": grid_graph(6, 6, max_length=5, seed=2),
        "gnp": gnp_graph(30, 0.15, max_length=7, seed=4, ensure_source_reaches=True),
    }


@contextmanager
def serving(graphs, **server_kw):
    """A QueryServer + NetServer on a free port, run on a background loop."""
    server_kw.setdefault("workers", 2)
    server_kw.setdefault("max_batch", 8)
    server_kw.setdefault("linger_s", 0.005)
    qs = QueryServer(**server_kw)
    for gid, g in graphs.items():
        qs.register_graph(gid, g)
    qs.start()
    box = {}
    started = threading.Event()

    def runner():
        async def main():
            net = NetServer(qs, host="127.0.0.1", port=0)
            await net.start()
            box["net"] = net
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await net.run(install_signal_handlers=False)

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="net-test-loop", daemon=True)
    thread.start()
    assert started.wait(30), "net server failed to start"
    try:
        yield box["net"]
    finally:
        # run() may not have created its stop event yet; retry until the
        # loop thread actually exits (shutdown also stops the QueryServer).
        deadline = time.monotonic() + 30
        while thread.is_alive() and time.monotonic() < deadline:
            try:
                box["loop"].call_soon_threadsafe(box["net"].request_shutdown)
            except RuntimeError:
                break
            thread.join(0.1)
        thread.join(10)
        assert not thread.is_alive(), "net server failed to shut down"


class TestWireDifferential:
    def test_loadgen_over_socket_matches_solo(self, graphs):
        """The tentpole differential: 60 mixed queries over TCP, each
        verified against an in-process solo run; batching must show."""
        with serving(graphs) as net:
            report = run_net_loadgen(
                "127.0.0.1",
                net.port,
                graphs,
                n_requests=60,
                connections=3,
                depth=12,
                seed=1,
                verify=True,
            )
        assert report["ok"] == 60
        assert report["lost"] == 0
        assert report["equality"]["mismatches"] == 0
        assert report["coalesced_answers"] > 0

    def test_single_query_dist_exact(self, graphs):
        expect, _ = dijkstra(graphs["grid"], 0)
        with serving(graphs) as net:
            with NetClient("127.0.0.1", net.port) as c:
                r = c.call({"kind": "sssp", "graph_id": "grid", "source": 0})
        assert r["status"] == "ok"
        np.testing.assert_array_equal(np.asarray(r["dist"]), expect)

    def test_sharded_resident_served_over_socket(self, graphs):
        qs = QueryServer(workers=2, max_batch=4, linger_s=0.002)
        g = graphs["gnp"]
        qs.register_sharded_graph("gnp", g, 3)
        qs.start()
        expect, _ = dijkstra(g, 0)
        box = {}
        started = threading.Event()

        def runner():
            async def main():
                net = NetServer(qs, port=0)
                await net.start()
                box["net"], box["loop"] = net, asyncio.get_running_loop()
                started.set()
                await net.run(install_signal_handlers=False)

            asyncio.run(main())

        t = threading.Thread(target=runner, daemon=True)
        t.start()
        assert started.wait(30)
        try:
            with NetClient("127.0.0.1", box["net"].port) as c:
                r = c.call({"kind": "sssp", "graph_id": "gnp", "source": 0})
            assert r["status"] == "ok"
            np.testing.assert_array_equal(np.asarray(r["dist"]), expect)
        finally:
            while t.is_alive():
                box["loop"].call_soon_threadsafe(box["net"].request_shutdown)
                t.join(0.1)


class TestProtocol:
    def test_out_of_order_interleaved_responses(self, graphs):
        """A slow apsp pipelined behind fast sssps: answers come back by
        request id, not submission order, on one connection."""
        with serving(graphs) as net:
            with NetClient("127.0.0.1", net.port) as c:
                slow = c.submit(
                    {
                        "kind": "apsp",
                        "graph_id": "gnp",
                        "sources": list(range(12)),
                    }
                )
                fast = [
                    c.submit({"kind": "sssp", "graph_id": "grid", "source": s})
                    for s in range(6)
                ]
                for rid in fast:
                    r = c.result(rid, timeout_s=60)
                    assert r["status"] == "ok" and r["request_id"] == rid
                r = c.result(slow, timeout_s=60)
                assert r["status"] == "ok" and len(r["matrix"]) == 12

    def test_malformed_frame_answered_not_fatal(self, graphs):
        with serving(graphs) as net:
            with NetClient("127.0.0.1", net.port) as c:
                c.send_raw(b"{this is not json\n")
                err = c.pop_anonymous(timeout_s=30)
                assert err["status"] == "error"
                assert err["error_code"] == "INVALID"
                # the connection survives and still serves
                r = c.call({"kind": "sssp", "graph_id": "grid", "source": 1})
                assert r["status"] == "ok"

    def test_oversized_frame_bounded_then_resyncs(self, graphs):
        with serving(graphs) as net:
            with NetClient("127.0.0.1", net.port) as c:
                pad = "x" * (net.max_frame_bytes + 100)
                c.send_raw(
                    json.dumps({"kind": "sssp", "pad": pad}).encode() + b"\n"
                )
                err = c.pop_anonymous(timeout_s=30)
                assert err["error_code"] == "INVALID"
                r = c.call({"kind": "sssp", "graph_id": "grid", "source": 2})
                assert r["status"] == "ok"

    def test_unknown_graph_is_structured_error(self, graphs):
        with serving(graphs) as net:
            with NetClient("127.0.0.1", net.port) as c:
                r = c.call({"kind": "sssp", "graph_id": "nope", "source": 0})
        assert r["status"] == "error"
        assert r["error_code"] == "INVALID"

    def test_mid_request_disconnect_settles_tickets(self, graphs):
        """A client that vanishes mid-request leaks nothing: its tickets
        settle server-side and the listener keeps serving others."""
        with serving(graphs) as net:
            sock = socket.create_connection(("127.0.0.1", net.port))
            frame = encode_frame(
                {"kind": "apsp", "graph_id": "gnp", "sources": list(range(10))}
            )
            sock.sendall(frame)
            sock.close()  # gone before the answer exists
            deadline = time.monotonic() + 60
            while net.stats()["inflight"] and time.monotonic() < deadline:
                time.sleep(0.01)
            assert net.stats()["inflight"] == 0
            with NetClient("127.0.0.1", net.port) as c:
                r = c.call({"kind": "sssp", "graph_id": "grid", "source": 0})
                assert r["status"] == "ok"


def _spawn_cli(args, **kw):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        **kw,
    )


def _read_listening_port(proc, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("listening on "):
            _, _, port = line.strip().rpartition(":")
            return int(port)
    raise AssertionError("serve --net never printed its listening line")


class TestSignalContract:
    """Regression tests for the serve exit-code contract: 128 + signum."""

    def test_net_serve_sigterm_exits_143(self):
        proc = _spawn_cli(["serve", "--net", "--port", "0", "--workers", "2"])
        try:
            port = _read_listening_port(proc)
            with NetClient("127.0.0.1", port) as c:
                r = c.call({"kind": "sssp", "graph_id": "grid", "source": 0})
                assert r["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=60)
            assert proc.returncode == 128 + signal.SIGTERM
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    def test_stdin_serve_sigint_drains_and_exits_130(self):
        proc = _spawn_cli(["serve", "--requests", "-"], stdin=subprocess.PIPE)
        try:
            for s in range(3):
                doc = {"kind": "sssp", "graph_id": "grid", "source": s}
                proc.stdin.write(json.dumps(doc) + "\n")
            proc.stdin.flush()
            time.sleep(2.5)  # let the server accept + answer the stream
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 128 + signal.SIGINT
            answered = [json.loads(x) for x in out.splitlines() if x.strip()]
            assert len(answered) == 3  # graceful drain: nothing dropped
            assert all(a["status"] == "ok" for a in answered)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
