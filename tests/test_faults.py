"""Tests of fault injection and algorithm robustness under faults."""

import numpy as np
import pytest

from repro.core import Network, simulate
from repro.core.faults import with_dead_neurons, with_synapse_dropout, with_weight_noise
from repro.errors import ValidationError
from repro.workloads import gnp_graph


def sssp_network(graph):
    net = Network()
    ids = [net.add_neuron(f"v{v}", one_shot=True) for v in range(graph.n)]
    for u, v, w in graph.edges():
        if u != v:
            net.add_synapse(ids[u], ids[v], delay=int(w))
    return net, ids


class TestDeadNeurons:
    def test_dead_neuron_never_fires(self):
        g = gnp_graph(8, 0.5, max_length=3, seed=1, ensure_source_reaches=True)
        net, ids = sssp_network(g)
        faulty = with_dead_neurons(net, [ids[3]])
        r = simulate(faulty, [ids[0]], engine="event", max_steps=200)
        assert r.first_spike[ids[3]] == -1

    def test_cut_vertex_disconnects(self):
        # 0 -> 1 -> 2: killing 1 makes 2 unreachable
        from repro.workloads import path_graph

        g = path_graph(3, max_length=2, seed=0)
        net, ids = sssp_network(g)
        faulty = with_dead_neurons(net, [ids[1]])
        r = simulate(faulty, [ids[0]], engine="event", max_steps=50)
        assert r.first_spike[ids[2]] == -1

    def test_distances_never_shorten_under_faults(self):
        g = gnp_graph(10, 0.4, max_length=4, seed=2, ensure_source_reaches=True)
        net, ids = sssp_network(g)
        base = simulate(net, [ids[0]], engine="event", max_steps=200)
        faulty = with_dead_neurons(net, [ids[5]])
        r = simulate(faulty, [ids[0]], engine="event", max_steps=200)
        for v in range(g.n):
            if r.first_spike[ids[v]] >= 0:
                assert r.first_spike[ids[v]] >= base.first_spike[ids[v]]

    def test_ids_and_names_preserved(self):
        g = gnp_graph(6, 0.5, max_length=3, seed=3)
        net, ids = sssp_network(g)
        faulty = with_dead_neurons(net, [2])
        assert faulty.n_neurons == net.n_neurons
        assert faulty.name_of(4) == net.name_of(4)

    def test_out_of_range_rejected(self):
        net = Network()
        net.add_neuron()
        with pytest.raises(ValidationError):
            with_dead_neurons(net, [7])


class TestDropout:
    def test_p_zero_identity(self):
        g = gnp_graph(8, 0.4, max_length=3, seed=4)
        net, _ = sssp_network(g)
        same = with_synapse_dropout(net, 0.0, seed=1)
        assert same.n_synapses == net.n_synapses

    def test_p_one_removes_everything(self):
        g = gnp_graph(8, 0.4, max_length=3, seed=4)
        net, _ = sssp_network(g)
        none = with_synapse_dropout(net, 1.0, seed=1)
        assert none.n_synapses == 0

    def test_seeded_reproducible(self):
        g = gnp_graph(10, 0.5, max_length=3, seed=5)
        net, _ = sssp_network(g)
        a = with_synapse_dropout(net, 0.4, seed=9)
        b = with_synapse_dropout(net, 0.4, seed=9)
        assert a.n_synapses == b.n_synapses

    def test_invalid_p(self):
        net = Network()
        with pytest.raises(ValidationError):
            with_synapse_dropout(net, 1.5)

    def test_degradation_monotone_on_average(self):
        """More dropout -> fewer vertices reached (averaged over seeds)."""
        g = gnp_graph(15, 0.25, max_length=3, seed=6, ensure_source_reaches=True)
        net, ids = sssp_network(g)

        def reached(p):
            total = 0
            for s in range(5):
                faulty = with_synapse_dropout(net, p, seed=s)
                r = simulate(faulty, [ids[0]], engine="event", max_steps=300)
                total += int((r.first_spike >= 0).sum())
            return total

        assert reached(0.0) >= reached(0.3) >= reached(0.8)


class TestDeterminism:
    """Same seed -> bit-identical perturbed network; different seed differs."""

    def _graph_net(self):
        g = gnp_graph(16, 0.35, max_length=4, seed=11)
        net, _ = sssp_network(g)
        return net

    def test_dropout_same_seed_identical_compiled_network(self):
        net = self._graph_net()
        a = with_synapse_dropout(net, 0.4, seed=7).compile()
        b = with_synapse_dropout(net, 0.4, seed=7).compile()
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.syn_dst, b.syn_dst)
        assert np.array_equal(a.syn_weight, b.syn_weight)
        assert np.array_equal(a.syn_delay, b.syn_delay)

    def test_dropout_different_seed_different_topology(self):
        net = self._graph_net()
        compiled = [
            with_synapse_dropout(net, 0.4, seed=s).compile() for s in range(6)
        ]
        topologies = {
            (tuple(c.indptr.tolist()), tuple(c.syn_dst.tolist())) for c in compiled
        }
        assert len(topologies) > 1

    def test_weight_noise_same_seed_identical_weights(self):
        net = self._graph_net()
        a = with_weight_noise(net, 0.2, seed=13).compile()
        b = with_weight_noise(net, 0.2, seed=13).compile()
        assert np.array_equal(a.syn_weight, b.syn_weight)
        assert np.array_equal(a.syn_dst, b.syn_dst)

    def test_weight_noise_different_seed_different_weights(self):
        net = self._graph_net()
        a = with_weight_noise(net, 0.2, seed=13).compile()
        b = with_weight_noise(net, 0.2, seed=14).compile()
        # topology is preserved either way; only the weights move
        assert np.array_equal(a.syn_dst, b.syn_dst)
        assert not np.array_equal(a.syn_weight, b.syn_weight)


class TestWeightNoise:
    def test_topology_preserved(self):
        g = gnp_graph(8, 0.4, max_length=3, seed=7)
        net, _ = sssp_network(g)
        noisy = with_weight_noise(net, 0.1, seed=2)
        assert noisy.n_synapses == net.n_synapses

    def test_zero_sigma_identity_weights(self):
        g = gnp_graph(6, 0.4, max_length=3, seed=8)
        net, _ = sssp_network(g)
        noisy = with_weight_noise(net, 0.0, seed=2)
        a = net.compile()
        b = noisy.compile()
        assert np.allclose(a.syn_weight, b.syn_weight)

    def test_sssp_tolerates_small_excitatory_noise(self):
        """Unit weights against threshold 0.5 survive +-20% jitter: the
        spiking SSSP's answers do not change (a robustness property of the
        delay-encoded design — information lives in timing, not weights)."""
        g = gnp_graph(10, 0.4, max_length=4, seed=9, ensure_source_reaches=True)
        net, ids = sssp_network(g)
        base = simulate(net, [ids[0]], engine="event", max_steps=300)
        noisy = with_weight_noise(net, 0.05, seed=3)
        r = simulate(noisy, [ids[0]], engine="event", max_steps=300)
        assert np.array_equal(base.first_spike, r.first_spike)

    def test_negative_sigma_rejected(self):
        net = Network()
        with pytest.raises(ValidationError):
            with_weight_noise(net, -0.1)
