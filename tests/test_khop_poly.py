"""Tests of the Section 4.2 polynomial algorithm (round level) and the
Theorem 4.4 SSSP variant."""

import numpy as np
import pytest

from repro.algorithms import spiking_khop_poly, spiking_sssp_poly
from repro.algorithms.khop_poly import poly_round_length
from repro.errors import ValidationError
from repro.workloads import WeightedDigraph, gnp_graph, path_graph
from tests.conftest import ref_alpha, ref_khop, ref_sssp


class TestKhopCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_matches_bellman_ford(self, seed, k):
        g = gnp_graph(14, 0.25, max_length=5, seed=seed)
        r = spiking_khop_poly(g, 0, k)
        assert np.array_equal(r.dist, ref_khop(g, 0, k))

    def test_k_zero(self, small_graph):
        r = spiking_khop_poly(small_graph, 0, 0)
        assert r.dist.tolist() == [0, -1, -1, -1, -1, -1]

    def test_prefix_min_over_rounds(self):
        # distance achieved at round 1 must survive a worse round-2 message
        g = WeightedDigraph(3, [(0, 1, 1), (0, 2, 9), (1, 2, 1)])
        r = spiking_khop_poly(g, 0, 2)
        assert r.dist[2] == 2

    def test_stop_at_target(self):
        g = path_graph(6, max_length=2, seed=1)
        r = spiking_khop_poly(g, 0, 5, target=3, stop_at_target=True)
        assert r.dist[3] >= 0
        assert r.cost.rounds == 3  # stops the round the target first hears

    def test_stop_at_target_requires_target(self, small_graph):
        with pytest.raises(ValidationError):
            spiking_khop_poly(small_graph, 0, 2, stop_at_target=True)

    def test_invalid_args(self, small_graph):
        with pytest.raises(ValidationError):
            spiking_khop_poly(small_graph, -2, 1)
        with pytest.raises(ValidationError):
            spiking_khop_poly(small_graph, 0, -1)


class TestKhopCost:
    def test_round_length_formula(self):
        assert poly_round_length(8, 4) == 5  # log2(32)
        assert poly_round_length(2, 1) == 1
        assert poly_round_length(1024, 1024) == 20

    def test_ticks_are_rounds_times_x(self, small_graph):
        k = 3
        r = spiking_khop_poly(small_graph, 0, k)
        assert r.cost.simulated_ticks == r.cost.rounds * r.cost.round_length
        assert r.cost.rounds <= k

    def test_rounds_stop_when_wavefront_dies(self):
        g = path_graph(4, max_length=1, seed=0)
        r = spiking_khop_poly(g, 0, 50)
        assert r.cost.rounds == 4  # wave leaves the path after 3 hops + 1 empty

    def test_message_bits_cover_k_hops(self, small_graph):
        r = spiking_khop_poly(small_graph, 0, 3)
        assert r.cost.message_bits >= int(np.ceil(np.log2(3 * small_graph.max_length())))

    def test_neurons_m_log_nu(self, small_graph):
        r = spiking_khop_poly(small_graph, 0, 3)
        bits = r.cost.message_bits
        assert r.cost.neuron_count == (small_graph.n + small_graph.m) * bits


class TestSsspPoly:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = gnp_graph(14, 0.3, max_length=6, seed=seed,
                      ensure_source_reaches=(seed % 2 == 0))
        r = spiking_sssp_poly(g, 0)
        assert np.array_equal(r.dist, ref_sssp(g, 0))

    def test_rounds_equal_deepest_shortest_path(self):
        g = path_graph(6, max_length=3, seed=2)
        r = spiking_sssp_poly(g, 0)
        assert r.cost.rounds == 5

    def test_alpha_extras_single_target(self):
        g = gnp_graph(12, 0.3, max_length=5, seed=4, ensure_source_reaches=True)
        target = 7
        r = spiking_sssp_poly(g, 0, target=target)
        assert r.cost.extras["alpha"] == ref_alpha(g, 0, target)

    def test_unreachable(self):
        g = WeightedDigraph(3, [(1, 2, 1)])
        r = spiking_sssp_poly(g, 0)
        assert r.dist.tolist() == [0, -1, -1]

    def test_validation(self, small_graph):
        with pytest.raises(ValidationError):
            spiking_sssp_poly(small_graph, 100)
