"""Golden regression suite: every engine vs recorded fixtures.

``tests/golden/*.json`` freeze known-good runs (graph, answer, cost
fields, and — for SNN-level SSSP — the full spike raster) produced by
``tools/gen_golden.py``.  These tests replay each fixture on every
execution path in ``gen_golden.ENGINE_PATHS`` (dense, event-driven,
batched dense, and sparse CSR) and compare spike for spike, so any
semantic drift anywhere in the engine or driver stack fails loudly
against a recorded artifact rather than only against another live engine.

Regenerate (and review the diff!) after an intentional semantic change:

    PYTHONPATH=src python tools/gen_golden.py
"""

import json
import sys
from pathlib import Path

import pytest

from repro.algorithms import spiking_khop_poly, spiking_sssp_pseudo, sssp_network
from repro.workloads import WeightedDigraph

GOLDEN_DIR = Path(__file__).parent / "golden"

sys.path.insert(0, str(GOLDEN_DIR.parent.parent / "tools"))
try:
    from gen_golden import ENGINE_PATHS, build_fixtures, replay_sssp
finally:
    sys.path.pop(0)


def load(name: str) -> dict:
    payload = json.loads((GOLDEN_DIR / name).read_text())
    assert payload["schema"] == "repro.golden/v1"
    return payload


def graph_of(payload: dict) -> WeightedDigraph:
    return WeightedDigraph(
        payload["graph"]["n"], [tuple(e) for e in payload["graph"]["edges"]]
    )


def check_cost(cost, expected: dict) -> None:
    for field, want in expected.items():
        assert getattr(cost, field) == want, field


SSSP_FIXTURES = ["sssp_small.json", "sssp_gnp12.json"]

#: Engines the solo algorithm driver dispatches to directly ("batch" is a
#: batched-run shape, not a ``simulate()`` engine name).
DRIVER_ENGINES = [e for e in ENGINE_PATHS if e != "batch"]


@pytest.mark.parametrize("fixture", SSSP_FIXTURES)
@pytest.mark.parametrize("engine", DRIVER_ENGINES)
def test_golden_sssp_answer_and_cost(fixture, engine):
    payload = load(fixture)
    g = graph_of(payload)
    r = spiking_sssp_pseudo(g, payload["source"], engine=engine)
    assert r.dist.tolist() == payload["dist"]
    check_cost(r.cost, payload["cost"])


@pytest.mark.parametrize("fixture", SSSP_FIXTURES)
@pytest.mark.parametrize("engine", ENGINE_PATHS)
def test_golden_sssp_raster(fixture, engine):
    """The engines must reproduce the recorded spike raster tick for tick."""
    payload = load(fixture)
    assert engine in payload["engines"], "fixture predates this engine"
    g = graph_of(payload)
    net, ids = sssp_network(g)
    horizon = (g.n - 1) * max(1, g.max_length()) + 1
    res = replay_sssp(net, ids, payload["source"], horizon, engine)
    raster = {
        str(t): sorted(int(i) for i in ids_t)
        for t, ids_t in res.spike_events.items()
    }
    assert raster == payload["raster"]
    if engine != "event":  # the event engine's final tick is the last event time
        assert res.final_tick == payload["final_tick"]


def test_golden_khop_poly():
    payload = load("khop_poly_gnp12.json")
    g = graph_of(payload)
    r = spiking_khop_poly(g, payload["source"], payload["k"])
    assert r.dist.tolist() == payload["dist"]
    check_cost(r.cost, payload["cost"])


def test_fixtures_are_current():
    """The checked-in fixtures match what the generator produces today."""
    for fname, payload in build_fixtures().items():
        on_disk = json.loads((GOLDEN_DIR / fname).read_text())
        assert payload == on_disk, f"{fname} is stale; rerun tools/gen_golden.py"
