"""Tests of the runtime transient-fault models (repro.core.transient)."""

import numpy as np
import pytest

from repro.core import (
    Network,
    SpikeDrop,
    SpuriousSpikes,
    StuckAtFiring,
    StuckAtSilent,
    WeightDrift,
    compose,
    simulate_dense,
    simulate_event_driven,
)
from repro.core.session import DenseSession
from repro.core.transient import _uniform_hash, _uniform_hash_grid
from repro.errors import ValidationError
from repro.workloads import gnp_graph


def sssp_network(graph):
    net = Network()
    ids = [net.add_neuron(f"v{v}", one_shot=True) for v in range(graph.n)]
    for u, v, w in graph.edges():
        if u != v:
            net.add_synapse(ids[u], ids[v], delay=int(w))
    return net, ids


def chain(k=5, delay=3):
    net = Network()
    for _ in range(k):
        net.add_neuron(v_threshold=0.5, tau=1.0)
    for i in range(k - 1):
        net.add_synapse(i, i + 1, weight=1.0, delay=delay)
    return net


def trains(result, horizon):
    ev = result.spike_events or {}
    return {
        t: sorted(ids.tolist()) for t, ids in ev.items() if t <= horizon and ids.size
    }


def run_both(net, stim, faults, max_steps=80):
    rd = simulate_dense(
        net, stim, max_steps=max_steps, stop_when_quiescent=False,
        record_spikes=True, faults=faults,
    )
    re_ = simulate_event_driven(
        net, stim, max_steps=max_steps, record_spikes=True, faults=faults
    )
    return rd, re_


class TestCounterHash:
    def test_pure_function_of_inputs(self):
        ids = np.arange(100, dtype=np.int64)
        a = _uniform_hash(7, 13, ids)
        b = _uniform_hash(7, 13, ids)
        assert np.array_equal(a, b)

    def test_order_independent(self):
        ids = np.arange(50, dtype=np.int64)
        shuffled = ids[::-1].copy()
        assert np.array_equal(
            _uniform_hash(3, 5, ids)[::-1], _uniform_hash(3, 5, shuffled)
        )

    def test_seed_and_tick_decorrelate(self):
        ids = np.arange(200, dtype=np.int64)
        assert not np.array_equal(_uniform_hash(1, 0, ids), _uniform_hash(2, 0, ids))
        assert not np.array_equal(_uniform_hash(1, 0, ids), _uniform_hash(1, 1, ids))

    def test_uniform_range(self):
        u = _uniform_hash(0, 0, np.arange(10_000, dtype=np.int64))
        assert (u >= 0).all() and (u < 1).all()
        assert 0.45 < u.mean() < 0.55

    def test_grid_matches_scalar_ticks(self):
        ids = np.arange(17, dtype=np.int64)
        ticks = np.arange(4, 9, dtype=np.int64)
        grid = _uniform_hash_grid(11, ticks, ids)
        for i, t in enumerate(ticks):
            assert np.array_equal(grid[i], _uniform_hash(11, int(t), ids))


class TestSpikeDrop:
    def test_p_zero_is_identity(self):
        net = chain()
        rd, _ = run_both(net, [0], SpikeDrop(0.0, seed=1))
        clean = simulate_dense(net, [0], max_steps=80, record_spikes=True)
        assert np.array_equal(rd.first_spike, clean.first_spike)

    def test_p_one_stops_everything_after_source(self):
        net = chain()
        rd, _ = run_both(net, [0], SpikeDrop(1.0))
        assert rd.first_spike.tolist() == [0, -1, -1, -1, -1]

    def test_validation(self):
        with pytest.raises(ValidationError):
            SpikeDrop(1.5)
        with pytest.raises(ValidationError):
            SpikeDrop(-0.1)

    def test_sources_limits_scope(self):
        # drops confined to neuron 0's out-synapses: the 1->2 hop is safe
        net = chain(k=3, delay=2)
        fm = SpikeDrop(1.0, sources=[0])
        rd, _ = run_both(net, [0, 1], fm)
        assert rd.first_spike[0] == 0
        assert rd.first_spike[2] == 2  # reached from 1, not from 0

    def test_same_seed_same_outcome_different_seed_differs(self):
        g = gnp_graph(14, 0.3, max_length=4, seed=21, ensure_source_reaches=True)
        net, ids = sssp_network(g)
        r1 = simulate_dense(net, [ids[0]], max_steps=100, faults=SpikeDrop(0.4, seed=5))
        r2 = simulate_dense(net, [ids[0]], max_steps=100, faults=SpikeDrop(0.4, seed=5))
        assert np.array_equal(r1.first_spike, r2.first_spike)
        outcomes = {
            tuple(
                simulate_dense(
                    net, [ids[0]], max_steps=100, faults=SpikeDrop(0.4, seed=s)
                ).first_spike.tolist()
            )
            for s in range(8)
        }
        assert len(outcomes) > 1


class TestSpuriousSpikes:
    def test_forced_fires_are_recorded_and_propagate(self):
        net = chain(k=2, delay=2)
        # only neuron 0 babbles; rate 1 -> it fires every tick
        fm = SpuriousSpikes(1.0, neurons=[0])
        rd, re_ = run_both(net, None, fm, max_steps=10)
        assert rd.spike_counts[0] == 11  # ticks 0..10
        assert rd.first_spike[1] == 2
        assert np.array_equal(rd.spike_counts, re_.spike_counts)

    def test_rate_zero_silent(self):
        net = chain(k=2)
        rd, _ = run_both(net, None, SpuriousSpikes(0.0), max_steps=20)
        assert rd.total_spikes == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            SpuriousSpikes(2.0)


class TestStuckWindows:
    def test_stuck_silent_swallows_window_spikes(self):
        net = chain(k=3, delay=2)
        # neuron 1 fires at t=2; silencing [2, 3) loses its output
        fm = StuckAtSilent([(1, 2, 3)])
        rd, re_ = run_both(net, [0], fm)
        assert rd.first_spike.tolist() == [0, -1, -1]
        assert np.array_equal(rd.first_spike, re_.first_spike)

    def test_stuck_silent_outside_window_is_healthy(self):
        net = chain(k=3, delay=2)
        rd, _ = run_both(net, [0], StuckAtSilent([(1, 10, 20)]))
        assert rd.first_spike.tolist() == [0, 2, 4]

    def test_stuck_firing_floods_fanout(self):
        net = chain(k=2, delay=1)
        rd, re_ = run_both(net, None, StuckAtFiring([(0, 3, 6)]), max_steps=12)
        assert rd.first_spike[0] == 3
        assert rd.spike_counts[0] == 3  # ticks 3, 4, 5
        assert rd.first_spike[1] == 4
        assert np.array_equal(rd.spike_counts, re_.spike_counts)

    def test_window_validation(self):
        with pytest.raises(ValidationError):
            StuckAtSilent([(0, 5, 5)])  # empty window
        with pytest.raises(ValidationError):
            StuckAtFiring([(-1, 0, 2)])
        net = chain(k=2)
        with pytest.raises(ValidationError):
            simulate_dense(net, [0], max_steps=5, faults=StuckAtSilent([(9, 0, 2)]))


class TestWeightDrift:
    def test_zero_rate_identity(self):
        net = chain()
        rd, _ = run_both(net, [0], WeightDrift(0.0, seed=1))
        assert rd.first_spike.tolist() == [0, 3, 6, 9, 12]

    def test_drift_grows_with_time(self):
        # unit weights against threshold 0.5 survive small drift early on;
        # a hugely drifted negative direction eventually breaks a late hop
        net = chain(k=5, delay=6)
        broken = 0
        for seed in range(10):
            rd, _ = run_both(net, [0], WeightDrift(0.08, seed=seed), max_steps=60)
            if (rd.first_spike < 0).any():
                broken += 1
        assert broken > 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            WeightDrift(-0.5)


class TestComposition:
    def test_or_operator_composes(self):
        fm = SpikeDrop(0.1) | SpuriousSpikes(0.05) | StuckAtSilent([(0, 1, 2)])
        net = chain()
        rd, re_ = run_both(net, [0], fm)
        assert np.array_equal(rd.first_spike, re_.first_spike)

    def test_compose_requires_a_model(self):
        with pytest.raises(ValidationError):
            compose()
        with pytest.raises(ValidationError):
            compose(None)

    def test_compose_single_passthrough(self):
        fm = SpikeDrop(0.3, seed=2)
        assert compose(fm) is fm


class TestCrossEngineEquivalence:
    """All three execution paths must observe identical fault semantics."""

    def fault_models(self):
        return [
            SpikeDrop(0.35, seed=4),
            SpuriousSpikes(0.03, seed=9),
            StuckAtSilent([(2, 3, 10)]),
            StuckAtFiring([(1, 5, 8)]),
            compose(
                SpikeDrop(0.2, seed=1),
                SpuriousSpikes(0.02, seed=2),
                StuckAtSilent([(3, 0, 6)]),
                StuckAtFiring([(4, 7, 9)]),
            ),
        ]

    def test_dense_vs_event_spike_trains(self):
        g = gnp_graph(12, 0.3, max_length=4, seed=31, ensure_source_reaches=True)
        net, ids = sssp_network(g)
        for fm in self.fault_models():
            rd, re_ = run_both(net, [ids[0]], fm, max_steps=70)
            horizon = min(rd.final_tick, re_.final_tick)
            assert trains(rd, horizon) == trains(re_, horizon), fm
            assert np.array_equal(rd.first_spike, re_.first_spike)

    def test_dense_vs_session_spike_trains(self):
        g = gnp_graph(12, 0.3, max_length=4, seed=32, ensure_source_reaches=True)
        net, ids = sssp_network(g)
        for fm in self.fault_models():
            rd = simulate_dense(
                net, [ids[0]], max_steps=50, stop_when_quiescent=False,
                record_spikes=True, faults=fm,
            )
            sess = DenseSession(net, faults=fm)
            sess.inject([ids[0]])
            got = {}
            for _ in range(51):
                fired = sess.step()
                if fired.size:
                    got[sess.tick] = sorted(fired.tolist())
            assert got == trains(rd, 50), fm

    def test_weight_drift_dense_vs_event_on_single_delivery_topology(self):
        # drifted weights are inexact floats; summation order could differ
        # between engines, so equivalence is asserted on a chain where each
        # neuron receives at most one delivery per tick
        net = chain(k=6, delay=4)
        for seed in range(5):
            fm = WeightDrift(0.05, seed=seed)
            rd, re_ = run_both(net, [0], fm, max_steps=60)
            assert np.array_equal(rd.first_spike, re_.first_spike)
            assert np.array_equal(rd.spike_counts, re_.spike_counts)

    def test_quiescence_waits_for_pending_forced_spikes(self):
        # a forced spike far in the future must keep the run alive
        net = chain(k=2, delay=1)
        fm = StuckAtFiring([(0, 30, 31)])
        rd = simulate_dense(
            net, None, max_steps=100, stop_when_quiescent=True,
            record_spikes=True, faults=fm,
        )
        re_ = simulate_event_driven(net, None, max_steps=100, record_spikes=True, faults=fm)
        assert rd.first_spike[0] == 30 and rd.first_spike[1] == 31
        assert np.array_equal(rd.first_spike, re_.first_spike)
