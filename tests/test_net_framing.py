"""Tests of the JSONL wire framing: partial reads, bounds, resync.

The decoder is the only code between raw socket bytes and the serving
layer, so every malformed shape must come out as a *value* (a
:class:`FrameError` with a stable error code), never an exception — a
hostile or buggy client cannot crash a reader task.
"""

import json

import pytest

from repro.errors import ServiceOverloadedError, ValidationError
from repro.service.net import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
    error_payload,
)


class TestEncode:
    def test_round_trip(self):
        doc = {"kind": "sssp", "graph_id": "g", "source": 3, "request_id": "r1"}
        frame = encode_frame(doc)
        assert frame.endswith(b"\n")
        assert json.loads(frame) == doc

    def test_deterministic_key_order(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b

    def test_default_bound_is_sane(self):
        assert DEFAULT_MAX_FRAME_BYTES >= 1 << 20


class TestDecoder:
    def test_single_frame(self):
        dec = FrameDecoder()
        out = dec.feed(b'{"x": 1}\n')
        assert out == [{"x": 1}]

    def test_partial_reads_reassemble(self):
        """A frame split at arbitrary byte boundaries decodes exactly once."""
        frame = encode_frame({"kind": "sssp", "graph_id": "g", "source": 0})
        for cut in range(1, len(frame) - 1):
            dec = FrameDecoder()
            assert dec.feed(frame[:cut]) == []
            out = dec.feed(frame[cut:])
            assert out == [json.loads(frame)], f"split at {cut}"

    def test_many_frames_in_one_read(self):
        dec = FrameDecoder()
        blob = b"".join(encode_frame({"i": i}) for i in range(5))
        assert dec.feed(blob) == [{"i": i} for i in range(5)]

    def test_blank_lines_skipped(self):
        dec = FrameDecoder()
        assert dec.feed(b"\n  \n{\"x\": 1}\n\n") == [{"x": 1}]

    def test_bad_json_is_structured_invalid(self):
        dec = FrameDecoder()
        (err,) = dec.feed(b"{nope\n")
        assert isinstance(err, FrameError)
        payload = err.payload()
        assert payload["status"] == "error"
        assert payload["error_code"] == "INVALID"

    def test_non_object_frame_rejected(self):
        dec = FrameDecoder()
        (err,) = dec.feed(b"[1, 2, 3]\n")
        assert isinstance(err, FrameError)
        assert err.payload()["error_code"] == "INVALID"

    def test_oversized_frame_bounded_and_resyncs(self):
        """An oversized frame errors once, then the stream recovers."""
        dec = FrameDecoder(max_frame_bytes=64)
        big = b'{"pad": "' + b"x" * 200 + b'"}\n'
        out = dec.feed(big + b'{"ok": true}\n')
        assert len(out) == 2
        assert isinstance(out[0], FrameError)
        assert out[0].payload()["error_code"] == "INVALID"
        assert out[1] == {"ok": True}

    def test_oversized_detected_before_newline_arrives(self):
        """The bound trips on buffered bytes, not only at frame end."""
        dec = FrameDecoder(max_frame_bytes=64)
        assert any(
            isinstance(x, FrameError) for x in dec.feed(b"y" * 100)
        ) or any(isinstance(x, FrameError) for x in dec.feed(b"y" * 100))
        # tail of the oversized frame is swallowed; next frame decodes
        assert dec.feed(b"tail\n") == []
        assert dec.feed(b'{"ok": 1}\n') == [{"ok": 1}]

    def test_decoder_never_raises_on_fuzz(self):
        dec = FrameDecoder(max_frame_bytes=128)
        chunks = [
            b"\x00\xff\xfe garbage",
            b"\n{broken",
            b"}\n" + b"A" * 400,
            b"\n" + encode_frame({"fine": 1}),
        ]
        decoded = []
        for chunk in chunks:
            decoded.extend(dec.feed(chunk))
        assert {"fine": 1} in decoded


class TestErrorPayload:
    def test_reuses_error_taxonomy(self):
        p = error_payload(ValidationError("bad source"), "r9")
        assert p["status"] == "error"
        assert p["request_id"] == "r9"
        assert p["error_code"] == "INVALID"
        assert p["error_type"] == "ValidationError"
        assert p["retryable"] is False

    def test_retryable_codes_marked(self):
        p = error_payload(ServiceOverloadedError("queue full"), None)
        assert p["error_code"] == "OVERLOADED"
        assert p["retryable"] is True

    def test_unknown_exception_is_internal(self):
        p = error_payload(RuntimeError("?"), None)
        assert p["error_code"] == "INTERNAL"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
