"""Tests of the trace recorder, the hook API, and the trace exports."""

import json

import numpy as np
import pytest

from repro.core import Network, simulate, simulate_dense, simulate_event_driven
from repro.telemetry import EngineHooks, TraceRecorder, compose_hooks


def chain_network(k=4, delay=2):
    net = Network()
    ids = [net.add_neuron(tau=1.0) for _ in range(k)]
    for a, b in zip(ids, ids[1:]):
        net.add_synapse(a, b, delay=delay)
    return net, ids


class TestRingBuffer:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_eviction_keeps_exact_totals(self):
        rec = TraceRecorder(capacity=3)
        for t in range(10):
            rec.on_spikes(t, np.array([1, 2]))
        assert len(rec.events) == 3
        assert rec.emitted == 10
        assert rec.dropped_events == 7
        assert rec.total_spikes == 20  # totals never evicted
        assert [e.tick for e in rec.events] == [7, 8, 9]

    def test_keep_ids(self):
        with_ids = TraceRecorder(keep_ids=True)
        without = TraceRecorder()
        for rec in (with_ids, without):
            rec.on_spikes(3, np.array([4, 7]))
        assert with_ids.events[0].data["ids"] == [4, 7]
        assert "ids" not in without.events[0].data


class TestEngineIntegration:
    def test_dense_run_records_lifecycle(self):
        net, ids = chain_network()
        rec = TraceRecorder()
        r = simulate_dense(net, [ids[0]], max_steps=20, probe_voltages=[ids[1]],
                           hooks=rec)
        assert rec.runs == 1 and rec.engine == "dense"
        assert rec.total_spikes == r.spike_counts.sum() == len(ids)
        assert rec.total_deliveries == len(ids) - 1
        assert rec.total_probe_samples > 0
        assert rec.final_tick == r.final_tick
        assert rec.stop_reason is r.stop_reason
        kinds = {e.kind for e in rec.events}
        assert {"start", "spikes", "deliveries", "probe", "stop"} <= kinds

    def test_event_run_records_same_totals_as_dense(self):
        net, ids = chain_network()
        dense, event = TraceRecorder(), TraceRecorder()
        simulate_dense(net, [ids[0]], max_steps=20, hooks=dense)
        simulate_event_driven(net, [ids[0]], max_steps=20, hooks=event)
        assert event.engine == "event"
        assert dense.total_spikes == event.total_spikes
        assert dense.total_deliveries == event.total_deliveries
        assert dense.fault_totals() == event.fault_totals()

    def test_simulate_dispatch_forwards_hooks(self):
        net, ids = chain_network()
        rec = TraceRecorder()
        simulate(net, [ids[0]], engine="event", max_steps=20, hooks=rec)
        assert rec.total_spikes == len(ids)

    def test_spike_event_ticks_match_result(self):
        net, ids = chain_network()
        rec = TraceRecorder(keep_ids=True)
        r = simulate_dense(net, [ids[0]], max_steps=20, record_spikes=True,
                           hooks=rec)
        observed = {e.tick: e.data["ids"] for e in rec.events_of("spikes")}
        expected = {t: sorted(a.tolist()) for t, a in r.spike_events.items()}
        assert observed == expected


class TestExports:
    @pytest.fixture
    def recorded(self):
        net, ids = chain_network()
        rec = TraceRecorder(keep_ids=True)
        simulate_dense(net, [ids[0]], max_steps=20, hooks=rec)
        return rec

    def test_json_roundtrip(self, recorded, tmp_path):
        path = tmp_path / "trace.json"
        text = recorded.to_json(str(path))
        doc = json.loads(path.read_text())
        assert json.loads(text) == doc
        assert doc["schema"] == "repro.telemetry.trace/v1"
        assert doc["summary"]["spikes"] == recorded.total_spikes
        assert len(doc["events"]) == len(recorded.events)

    def test_csv_has_header_and_rows(self, recorded):
        lines = recorded.to_csv().strip().splitlines()
        assert lines[0] == "tick,kind,count,extra"
        assert len(lines) == 1 + len(recorded.events)

    def test_chrome_trace_format(self, recorded):
        doc = json.loads(recorded.to_chrome_trace())
        names = {row["name"] for row in doc["traceEvents"]}
        assert "process_name" in names and "spikes" in names and "stop" in names
        counters = [r for r in doc["traceEvents"] if r.get("ph") == "C"]
        assert all("ts" in r for r in counters)

    def test_summary_reports_eviction(self):
        rec = TraceRecorder(capacity=2)
        for t in range(5):
            rec.on_spikes(t, np.array([0]))
        s = rec.summary()
        assert s["events_recorded"] == 2 and s["events_dropped"] == 3


class TestComposeHooks:
    def test_empty_is_none(self):
        assert compose_hooks() is None
        assert compose_hooks(None, None) is None

    def test_single_passthrough(self):
        rec = TraceRecorder()
        assert compose_hooks(None, rec) is rec

    def test_multi_dispatches_to_all(self):
        a, b = TraceRecorder(), TraceRecorder()
        multi = compose_hooks(a, b)
        multi.on_spikes(1, np.array([0, 1]))
        multi.on_stop(5, "quiescent")
        assert a.total_spikes == b.total_spikes == 2
        assert a.final_tick == b.final_tick == 5

    def test_multi_works_as_engine_hooks(self):
        net, ids = chain_network()
        a, b = TraceRecorder(), TraceRecorder()
        simulate_dense(net, [ids[0]], max_steps=20, hooks=compose_hooks(a, b))
        assert a.total_spikes == b.total_spikes == len(ids)

    def test_base_hooks_are_noops(self):
        hooks = EngineHooks()
        hooks.on_run_start(1, 1, "dense")
        hooks.on_spikes(0, np.array([0]))
        hooks.on_deliveries(0, 1, 0)
        hooks.on_probe(0, [0], np.array([0.0]))
        hooks.on_fault_forced(0, np.array([0]))
        hooks.on_fault_suppressed(0, np.array([0]))
        hooks.on_stop(0, "quiescent")
