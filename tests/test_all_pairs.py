"""Tests of the multi-source drivers (all-pairs, crossbar reuse)."""

import numpy as np
import pytest

from repro.algorithms.all_pairs import all_pairs_on_crossbar, all_pairs_shortest_paths
from repro.algorithms.sssp_pseudo import spiking_sssp_pseudo, sssp_network
from repro.core.transient import CountingFaults, SpikeDrop
from repro.errors import ValidationError
from repro.telemetry import TraceRecorder
from repro.workloads import gnp_graph
from tests.conftest import ref_sssp


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(9, 0.35, max_length=5, seed=19)


def reference_matrix(g):
    return np.stack([ref_sssp(g, s) for s in range(g.n)])


class TestAllPairs:
    def test_matrix_matches_reference(self, graph):
        matrix, cost = all_pairs_shortest_paths(graph)
        assert np.array_equal(matrix, reference_matrix(graph))
        assert cost.extras["sources"] == graph.n

    def test_diagonal_zero(self, graph):
        matrix, _ = all_pairs_shortest_paths(graph)
        assert (np.diag(matrix) == 0).all()

    def test_subset_of_sources(self, graph):
        matrix, cost = all_pairs_shortest_paths(graph, sources=np.asarray([2, 5]))
        assert matrix.shape == (2, graph.n)
        assert np.array_equal(matrix[0], ref_sssp(graph, 2))
        assert np.array_equal(matrix[1], ref_sssp(graph, 5))

    def test_loading_charged_once(self, graph):
        _, cost = all_pairs_shortest_paths(graph)
        assert cost.loading_ticks == graph.m

    def test_source_validation(self, graph):
        with pytest.raises(ValidationError):
            all_pairs_shortest_paths(graph, sources=np.asarray([99]))


class TestBatchedEqualsIndependentRuns:
    """The batched driver is a pure optimization: every observable —
    distances, tick accounting, spike counts, message counts, and fault
    realizations — must equal n independent ``spiking_sssp_pseudo`` runs."""

    def test_distances_ticks_and_spikes_match_solo_runs(self, graph):
        matrix, cost = all_pairs_shortest_paths(graph)
        ticks = spikes = 0
        for s in range(graph.n):
            r = spiking_sssp_pseudo(graph, s)
            assert np.array_equal(matrix[s], r.dist)
            ticks += r.cost.simulated_ticks
            spikes += r.cost.spike_count
        assert cost.simulated_ticks == ticks
        assert cost.spike_count == spikes

    def test_batched_and_sequential_modes_agree(self, graph):
        m_b, c_b = all_pairs_shortest_paths(graph)
        m_s, c_s = all_pairs_shortest_paths(graph, batched=False)
        assert np.array_equal(m_b, m_s)
        assert c_b.simulated_ticks == c_s.simulated_ticks
        assert c_b.spike_count == c_s.spike_count
        assert c_b.extras["messages"] == c_s.extras["messages"]
        assert (c_b.neuron_count, c_b.synapse_count) == (c_s.neuron_count, c_s.synapse_count)

    def test_message_aggregation_sums_per_run_fanout(self, graph):
        _, cost = all_pairs_shortest_paths(graph)
        net, _ = sssp_network(graph)
        out_degree = np.diff(net.compile().indptr)
        expected = sum(
            int(spiking_sssp_pseudo(graph, s).sim.spike_counts @ out_degree)
            for s in range(graph.n)
        )
        assert cost.extras["messages"] == expected
        assert cost.spike_count > 0 and expected >= cost.spike_count

    def test_fault_realizations_match_solo_runs(self, graph):
        rate, base_seed = 0.25, 7
        batch_models = [
            CountingFaults(SpikeDrop(rate, seed=base_seed + s)) for s in range(graph.n)
        ]
        solo_models = [
            CountingFaults(SpikeDrop(rate, seed=base_seed + s)) for s in range(graph.n)
        ]
        matrix, _ = all_pairs_shortest_paths(graph, faults=batch_models)
        any_faults = False
        for s in range(graph.n):
            r = spiking_sssp_pseudo(graph, s, faults=solo_models[s])
            assert np.array_equal(matrix[s], r.dist), f"source {s}"
            got = batch_models[s].realization.as_dict()
            assert got == solo_models[s].realization.as_dict(), f"source {s}"
            any_faults = any_faults or any(got.values())
        assert any_faults  # the sweep actually exercised fault realizations

    def test_per_source_hook_totals_match_solo_runs(self, graph):
        batch_recs = [TraceRecorder() for _ in range(graph.n)]
        all_pairs_shortest_paths(graph, hooks=batch_recs)
        for s in range(graph.n):
            solo = TraceRecorder()
            spiking_sssp_pseudo(graph, s, hooks=solo)
            assert batch_recs[s].total_spikes == solo.total_spikes, f"source {s}"
            assert batch_recs[s].total_deliveries == solo.total_deliveries, f"source {s}"


class TestAllPairsCrossbar:
    def test_matrix_matches_reference(self, graph):
        matrix, cost = all_pairs_on_crossbar(graph)
        assert np.array_equal(matrix, reference_matrix(graph))
        assert cost.neuron_count == 2 * graph.n**2

    def test_single_embedding_reused(self, graph):
        _, cost = all_pairs_on_crossbar(graph)
        assert cost.loading_ticks == graph.m  # programmed once

    def test_crossbar_ticks_exceed_native(self, graph):
        _, native = all_pairs_shortest_paths(graph)
        _, onchip = all_pairs_on_crossbar(graph)
        assert onchip.simulated_ticks > native.simulated_ticks

    def test_source_validation(self, graph):
        with pytest.raises(ValidationError):
            all_pairs_on_crossbar(graph, sources=np.asarray([-1]))
