"""Tests of the multi-source drivers (all-pairs, crossbar reuse)."""

import numpy as np
import pytest

from repro.algorithms.all_pairs import all_pairs_on_crossbar, all_pairs_shortest_paths
from repro.errors import ValidationError
from repro.workloads import gnp_graph
from tests.conftest import ref_sssp


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(9, 0.35, max_length=5, seed=19)


def reference_matrix(g):
    return np.stack([ref_sssp(g, s) for s in range(g.n)])


class TestAllPairs:
    def test_matrix_matches_reference(self, graph):
        matrix, cost = all_pairs_shortest_paths(graph)
        assert np.array_equal(matrix, reference_matrix(graph))
        assert cost.extras["sources"] == graph.n

    def test_diagonal_zero(self, graph):
        matrix, _ = all_pairs_shortest_paths(graph)
        assert (np.diag(matrix) == 0).all()

    def test_subset_of_sources(self, graph):
        matrix, cost = all_pairs_shortest_paths(graph, sources=np.asarray([2, 5]))
        assert matrix.shape == (2, graph.n)
        assert np.array_equal(matrix[0], ref_sssp(graph, 2))
        assert np.array_equal(matrix[1], ref_sssp(graph, 5))

    def test_loading_charged_once(self, graph):
        _, cost = all_pairs_shortest_paths(graph)
        assert cost.loading_ticks == graph.m

    def test_source_validation(self, graph):
        with pytest.raises(ValidationError):
            all_pairs_shortest_paths(graph, sources=np.asarray([99]))


class TestAllPairsCrossbar:
    def test_matrix_matches_reference(self, graph):
        matrix, cost = all_pairs_on_crossbar(graph)
        assert np.array_equal(matrix, reference_matrix(graph))
        assert cost.neuron_count == 2 * graph.n**2

    def test_single_embedding_reused(self, graph):
        _, cost = all_pairs_on_crossbar(graph)
        assert cost.loading_ticks == graph.m  # programmed once

    def test_crossbar_ticks_exceed_native(self, graph):
        _, native = all_pairs_shortest_paths(graph)
        _, onchip = all_pairs_on_crossbar(graph)
        assert onchip.simulated_ticks > native.simulated_ticks

    def test_source_validation(self, graph):
        with pytest.raises(ValidationError):
            all_pairs_on_crossbar(graph, sources=np.asarray([-1]))
