"""Tests that the generated API reference stays generable and current."""

import pathlib
import runpy

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC = ROOT / "docs" / "api_reference.md"
TOOL = ROOT / "tools" / "gen_api_docs.py"


def test_generator_runs_and_doc_is_current(tmp_path, monkeypatch, capsys):
    fresh = tmp_path / "api.md"
    monkeypatch.setattr("sys.argv", [str(TOOL), str(fresh)])
    with pytest.raises(SystemExit) as exc:
        runpy.run_path(str(TOOL), run_name="__main__")
    assert exc.value.code == 0
    assert fresh.read_text() == DOC.read_text(), (
        "docs/api_reference.md is stale; rerun tools/gen_api_docs.py"
    )


def test_reference_covers_all_packages():
    text = DOC.read_text()
    for module in (
        "repro.core",
        "repro.circuits",
        "repro.algorithms",
        "repro.embedding",
        "repro.baselines",
        "repro.distance_model",
        "repro.analysis",
        "repro.hardware",
        "repro.workloads",
        "repro.nga",
    ):
        assert f"## `{module}`" in text, module


def test_reference_mentions_headline_api():
    text = DOC.read_text()
    for name in (
        "spiking_sssp_pseudo",
        "wired_or_max",
        "DistanceMachine",
        "embed_graph",
        "tidal_flow",
    ):
        assert name in text, name
