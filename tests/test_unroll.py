"""Tests of the SNN -> feed-forward-TC unrolling (Section 1's simulation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.unroll import unroll_to_feedforward
from repro.core import Network, simulate_dense
from repro.errors import CircuitError


def gate_chain(delays):
    net = Network()
    ids = [net.add_neuron(tau=1.0) for _ in range(len(delays) + 1)]
    for i, d in enumerate(delays):
        net.add_synapse(ids[i], ids[i + 1], delay=d)
    return net, ids


class TestConstruction:
    def test_chain_unrolls_and_matches(self):
        net, ids = gate_chain([1, 2])
        unrolled = unroll_to_feedforward(net, [ids[0]], horizon=4)
        fired = unrolled.run([ids[0]])
        assert fired[(ids[0], 0)]
        assert fired[(ids[1], 1)]
        assert fired[(ids[2], 3)]

    def test_unstimulated_input_stays_silent(self):
        net, ids = gate_chain([1])
        unrolled = unroll_to_feedforward(net, [ids[0]], horizon=3)
        fired = unrolled.run([])
        assert not any(fired.values())

    def test_gate_count_polynomial(self):
        net, ids = gate_chain([1, 1, 1])
        T = 6
        unrolled = unroll_to_feedforward(net, [ids[0]], horizon=T)
        # at most one gate per (neuron, tick) pair plus the inputs
        assert unrolled.gate_count <= net.n_neurons * (T + 1) + len(ids)

    def test_structurally_silent_pairs_skipped(self):
        net, ids = gate_chain([3])
        unrolled = unroll_to_feedforward(net, [ids[0]], horizon=5)
        # neuron 1 can only fire at tick 3 (single delay-3 wire from tick 0)
        assert unrolled.signal_of(ids[1], 3) is not None
        assert unrolled.signal_of(ids[1], 2) is None
        assert unrolled.signal_of(ids[1], 4) is None

    def test_integrator_rejected(self):
        net = Network()
        net.add_neuron(tau=0.0)
        with pytest.raises(CircuitError):
            unroll_to_feedforward(net, [0], horizon=2)

    def test_one_shot_rejected(self):
        net = Network()
        net.add_neuron(tau=1.0, one_shot=True)
        with pytest.raises(CircuitError):
            unroll_to_feedforward(net, [0], horizon=2)

    def test_negative_horizon_rejected(self):
        net, ids = gate_chain([1])
        with pytest.raises(CircuitError):
            unroll_to_feedforward(net, [ids[0]], horizon=-1)

    def test_unknown_stimulus_in_run(self):
        net, ids = gate_chain([1])
        unrolled = unroll_to_feedforward(net, [ids[0]], horizon=2)
        with pytest.raises(CircuitError):
            unrolled.run([ids[1]])


@st.composite
def gate_networks(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    net = Network()
    for _ in range(n):
        net.add_neuron(v_threshold=draw(st.sampled_from([0.5, 1.5])), tau=1.0)
    for _ in range(draw(st.integers(min_value=1, max_value=2 * n))):
        net.add_synapse(
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            weight=draw(st.sampled_from([-1.0, 1.0])),
            delay=draw(st.integers(min_value=1, max_value=3)),
        )
    stim = sorted(
        {draw(st.integers(min_value=0, max_value=n - 1)) for _ in range(2)}
    )
    return net, stim


@given(gate_networks())
@settings(max_examples=40, deadline=None)
def test_unrolled_circuit_matches_recurrent_engine(case):
    """The TC-simulation claim: layer t of the unrolled circuit fires
    exactly the neurons the recurrent network fires at tick t."""
    net, stim = case
    T = 6
    unrolled = unroll_to_feedforward(net, stim, horizon=T)
    fired = unrolled.run(stim)
    native = simulate_dense(
        net, stim, max_steps=T, stop_when_quiescent=False, record_spikes=True
    )
    for t in range(T + 1):
        native_ids = set(
            native.spike_events.get(t, np.empty(0, dtype=np.int64)).tolist()
        )
        for i in range(net.n_neurons):
            assert fired.get((i, t), False) == (i in native_ids), (i, t)
