"""Tests of the Section 7 approximation algorithm (Theorems 7.1/7.2)."""

import math

import numpy as np
import pytest

from repro.algorithms import spiking_khop_approx, spiking_khop_pseudo
from repro.algorithms.approx import approx_epsilon
from repro.errors import ValidationError
from repro.workloads import gnp_graph, path_graph
from tests.conftest import ref_khop, ref_sssp


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [2, 4])
    def test_sandwich(self, seed, k):
        """dist(v) <= estimate <= (1 + eps) dist_k(v) for reachable v."""
        g = gnp_graph(18, 0.2, max_length=8, seed=seed, ensure_source_reaches=True)
        r = spiking_khop_approx(g, 0, k)
        eps = r.cost.extras["epsilon"]
        exact_k = ref_khop(g, 0, k)
        exact = ref_sssp(g, 0)
        for v in range(g.n):
            if exact_k[v] >= 0:
                assert r.dist[v] >= 0
                assert exact[v] - 1e-9 <= r.dist[v] <= (1 + eps) * exact_k[v] + 1e-9

    def test_exact_on_path_graph(self):
        g = path_graph(8, max_length=4, seed=2)
        k = 7
        r = spiking_khop_approx(g, 0, k)
        exact = ref_khop(g, 0, k)
        eps = r.cost.extras["epsilon"]
        for v in range(g.n):
            assert exact[v] <= r.dist[v] <= (1 + eps) * exact[v] + 1e-9

    def test_hop_unreachable_vertices(self):
        g = path_graph(10, max_length=1, seed=0)
        r = spiking_khop_approx(g, 0, 2)
        # vertices within 2 hops estimated; far vertices beyond every
        # horizon report -1 or an estimate >= their true distance
        assert r.dist[1] >= 1 - 1e-9 and r.dist[2] >= 2 - 1e-9
        for v in range(3, 10):
            assert r.dist[v] == -1 or r.dist[v] >= v - 1e-9

    def test_tighter_epsilon_tightens_answers(self):
        g = gnp_graph(16, 0.25, max_length=9, seed=12, ensure_source_reaches=True)
        k = 3
        loose = spiking_khop_approx(g, 0, k, epsilon=0.9)
        tight = spiking_khop_approx(g, 0, k, epsilon=0.05)
        exact_k = ref_khop(g, 0, k)
        for v in range(g.n):
            if exact_k[v] >= 0:
                assert tight.dist[v] <= 1.05 * exact_k[v] + 1e-9
                assert loose.dist[v] <= 1.9 * exact_k[v] + 1e-9

    def test_epsilon_default_one_over_log_n(self):
        assert math.isclose(approx_epsilon(1024), 0.1)
        assert approx_epsilon(2) == 1.0


class TestResourceModel:
    def test_scale_count_logarithmic(self):
        g = gnp_graph(16, 0.25, max_length=9, seed=1, ensure_source_reaches=True)
        r = spiking_khop_approx(g, 0, 4)
        scales = r.cost.extras["scales"]
        assert scales <= math.ceil(math.log2(2 * 4 * 9 / r.cost.extras["epsilon"])) + 1

    def test_neuron_advantage_over_exact(self):
        """Theorem 7.2: n neurons per scale vs the exact m log(nU)."""
        g = gnp_graph(30, 0.4, max_length=9, seed=3, ensure_source_reaches=True)
        k = 4
        approx = spiking_khop_approx(g, 0, k)
        exact = spiking_khop_pseudo(g, 0, k)
        assert approx.cost.neuron_count == g.n * approx.cost.extras["scales"]
        # dense graph: m log k exceeds n * #scales
        assert approx.cost.neuron_count < exact.cost.neuron_count

    def test_validation(self, small_graph):
        with pytest.raises(ValidationError):
            spiking_khop_approx(small_graph, 0, 0)
        with pytest.raises(ValidationError):
            spiking_khop_approx(small_graph, -1, 2)
        with pytest.raises(ValidationError):
            spiking_khop_approx(small_graph, 0, 2, epsilon=-0.5)


class TestCrossbarDeployment:
    def test_crossbar_matches_native_estimates(self):
        g = gnp_graph(10, 0.35, max_length=6, seed=17, ensure_source_reaches=True)
        k = 3
        native = spiking_khop_approx(g, 0, k)
        onchip = spiking_khop_approx(g, 0, k, on_crossbar=True)
        assert np.allclose(native.dist, onchip.dist)

    def test_reprogram_accounting(self):
        g = gnp_graph(8, 0.4, max_length=5, seed=18, ensure_source_reaches=True)
        r = spiking_khop_approx(g, 0, 3, on_crossbar=True)
        scales = r.cost.extras["scales"]
        # each scale programs one Type-2 delay per distinct (u, v) pair;
        # every scale but the last also unembeds
        slots = len({(u, v) for u, v, _w in g.edges() if u != v})
        assert r.cost.extras["reprogram_ops"] == slots * (2 * scales - 1)

    def test_crossbar_neuron_footprint(self):
        g = gnp_graph(8, 0.4, max_length=5, seed=19, ensure_source_reaches=True)
        r = spiking_khop_approx(g, 0, 3, on_crossbar=True)
        assert r.cost.neuron_count == 2 * g.n * g.n  # one crossbar, reused
