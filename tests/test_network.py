"""Tests for the Network builder and CompiledNetwork arrays."""

import numpy as np
import pytest

from repro.core import Network
from repro.errors import ValidationError


class TestBuilder:
    def test_ids_sequential(self):
        net = Network()
        assert [net.add_neuron() for _ in range(4)] == [0, 1, 2, 3]

    def test_named_lookup(self):
        net = Network()
        net.add_neuron("a")
        b = net.add_neuron("b")
        assert net.resolve("b") == b

    def test_duplicate_name_rejected(self):
        net = Network()
        net.add_neuron("x")
        with pytest.raises(ValidationError):
            net.add_neuron("x")

    def test_unknown_name(self):
        net = Network()
        with pytest.raises(ValidationError):
            net.resolve("ghost")

    def test_id_out_of_range(self):
        net = Network()
        net.add_neuron()
        with pytest.raises(ValidationError):
            net.resolve(5)

    def test_synapse_by_name(self):
        net = Network()
        net.add_neuron("a")
        net.add_neuron("b")
        net.add_synapse("a", "b", weight=2.0, delay=3)
        assert net.n_synapses == 1

    @pytest.mark.parametrize("delay", [0, -1, 1.5])
    def test_invalid_delay_rejected(self, delay):
        net = Network()
        a, b = net.add_neuron(), net.add_neuron()
        with pytest.raises(ValidationError):
            net.add_synapse(a, b, delay=delay)

    def test_add_neurons_bulk(self):
        net = Network()
        ids = net.add_neurons(5, v_threshold=1.5)
        assert len(ids) == 5
        assert net.params_of(ids[3]).v_threshold == 1.5

    def test_terminal_and_io_marks(self):
        net = Network()
        a, b = net.add_neuron(), net.add_neuron()
        net.mark_input(a)
        net.mark_output(b)
        net.set_terminal(b)
        c = net.compile()
        assert c.inputs.tolist() == [a]
        assert c.outputs.tolist() == [b]
        assert c.terminal == b


class TestCompile:
    def test_csr_layout(self):
        net = Network()
        ids = net.add_neurons(3)
        net.add_synapse(2, 0, weight=1.0, delay=1)
        net.add_synapse(0, 1, weight=2.0, delay=5)
        net.add_synapse(2, 1, weight=3.0, delay=2)
        c = net.compile()
        assert c.indptr.tolist() == [0, 1, 1, 3]
        sl = c.out_synapses(2)
        assert sorted(c.syn_dst[sl].tolist()) == [0, 1]

    def test_compile_cached_and_invalidated(self):
        net = Network()
        net.add_neuron()
        c1 = net.compile()
        assert net.compile() is c1
        net.add_neuron()
        c2 = net.compile()
        assert c2 is not c1 and c2.n == 2

    def test_max_delay(self):
        net = Network()
        a, b = net.add_neuron(), net.add_neuron()
        net.add_synapse(a, b, delay=7)
        assert net.compile().max_delay == 7

    def test_max_delay_no_synapses(self):
        net = Network()
        net.add_neuron()
        assert net.compile().max_delay == 1

    def test_pacemaker_flag(self):
        net = Network()
        net.add_neuron(v_reset=2.0, v_threshold=1.0)
        assert net.compile().has_pacemakers
        net2 = Network()
        net2.add_neuron()
        assert not net2.compile().has_pacemakers

    def test_has_decay(self):
        net = Network()
        net.add_neuron(tau=0.5)
        assert net.compile().has_decay

    def test_gather_out_synapses_matches_loop(self):
        rng = np.random.default_rng(0)
        net = Network()
        ids = net.add_neurons(20)
        for _ in range(100):
            net.add_synapse(int(rng.integers(20)), int(rng.integers(20)))
        c = net.compile()
        for subset in ([0], [3, 7, 7], list(range(20)), []):
            arr = np.asarray(subset, dtype=np.int64)
            got = sorted(c.gather_out_synapses(arr).tolist())
            want = sorted(
                s for i in subset for s in range(c.indptr[i], c.indptr[i + 1])
            )
            assert got == want

    def test_names_preserved(self):
        net = Network()
        net.add_neuron("alpha")
        net.add_neuron()
        c = net.compile()
        assert c.names[0] == "alpha" and c.names[1] is None
