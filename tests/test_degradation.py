"""Tests of the degradation-analysis layer (repro.analysis.degradation)."""

import pytest

from repro.analysis import (
    DegradationCell,
    degradation_markdown,
    degradation_sweep,
    markdown_table,
    render_degradation,
)
from repro.errors import ValidationError
from repro.workloads import gnp_graph

RATES = (0.0, 0.1)
TRIALS = 4


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(14, 0.3, max_length=4, seed=5, ensure_source_reaches=True)


@pytest.fixture(scope="module")
def cells(graph):
    return degradation_sweep(graph, rates=RATES, trials=TRIALS, seed=2)


class TestSweep:
    def test_shape(self, cells):
        assert len(cells) == 3 * len(RATES)  # three algorithm families
        assert {c.algorithm for c in cells} == {"sssp", "max", "matvec"}
        assert all(isinstance(c, DegradationCell) for c in cells)
        assert all(c.trials == TRIALS for c in cells)

    def test_zero_rate_is_perfect(self, cells):
        for c in cells:
            if c.rate == 0.0:
                assert c.success_probability == 1.0
                assert c.coverage == 1.0

    def test_metrics_bounded(self, cells):
        for c in cells:
            assert 0.0 <= c.success_probability <= 1.0
            assert 0.0 <= c.coverage <= 1.0

    def test_reproducible(self, graph, cells):
        again = degradation_sweep(graph, rates=RATES, trials=TRIALS, seed=2)
        assert again == cells

    def test_seed_changes_outcomes(self, graph, cells):
        other = degradation_sweep(graph, rates=RATES, trials=TRIALS, seed=3)
        assert other != cells

    def test_algorithm_subset(self, graph):
        only = degradation_sweep(
            graph, rates=(0.0,), trials=2, algorithms=("max",)
        )
        assert {c.algorithm for c in only} == {"max"}

    def test_default_graph_generated_when_omitted(self):
        cells = degradation_sweep(rates=(0.0,), trials=1, algorithms=("sssp",))
        assert cells[0].success_probability == 1.0

    def test_validation(self, graph):
        with pytest.raises(ValidationError):
            degradation_sweep(graph, trials=0)
        with pytest.raises(ValidationError):
            degradation_sweep(graph, rates=(1.5,))
        with pytest.raises(ValidationError):
            degradation_sweep(graph, algorithms=("dijkstra",))


class TestRendering:
    def test_text_table(self, cells):
        text = render_degradation(cells)
        lines = text.splitlines()
        assert "P(success)" in lines[0]
        assert len(lines) == 2 + len(cells)  # header + rule + one row per cell

    def test_markdown(self, cells):
        doc = degradation_markdown(cells)
        assert doc.startswith("# ")
        assert "| algorithm |" in doc
        assert "|---|---|---|---|---|" in doc

    def test_markdown_table_helper(self):
        table = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        assert table.splitlines() == [
            "| a | b |",
            "|---|---|",
            "| 1 | 2 |",
            "| 3 | 4 |",
        ]
