"""Tests of the Section 4.1 TTL k-hop algorithm (event level)."""

import numpy as np
import pytest

from repro.algorithms import spiking_khop_pseudo
from repro.algorithms.khop_pseudo import ttl_scale_factor
from repro.errors import ValidationError
from repro.workloads import WeightedDigraph, cycle_graph, gnp_graph, path_graph
from tests.conftest import ref_khop, ref_sssp


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 2, 3, 6])
    def test_matches_bellman_ford(self, seed, k):
        g = gnp_graph(14, 0.25, max_length=5, seed=seed)
        r = spiking_khop_pseudo(g, 0, k)
        assert np.array_equal(r.dist, ref_khop(g, 0, k))

    def test_k_zero_only_source(self, small_graph):
        r = spiking_khop_pseudo(small_graph, 0, 0)
        assert r.dist.tolist() == [0, -1, -1, -1, -1, -1]

    def test_k_one_direct_neighbors(self, small_graph):
        r = spiking_khop_pseudo(small_graph, 0, 1)
        assert r.dist.tolist() == [0, 2, 7, -1, -1, -1]

    def test_hop_budget_blocks_distant_vertices(self):
        g = path_graph(6, max_length=1, seed=0)
        r = spiking_khop_pseudo(g, 0, 3)
        assert r.dist.tolist() == [0, 1, 2, 3, -1, -1]

    def test_large_k_equals_sssp(self, random_graphs):
        for g in random_graphs:
            r = spiking_khop_pseudo(g, 0, g.n - 1)
            assert np.array_equal(r.dist, ref_sssp(g, 0))

    def test_monotone_in_k(self):
        g = gnp_graph(12, 0.3, max_length=6, seed=8)
        prev = spiking_khop_pseudo(g, 0, 1).dist
        for k in range(2, 6):
            cur = spiking_khop_pseudo(g, 0, k).dist
            for v in range(g.n):
                if prev[v] >= 0:
                    assert 0 <= cur[v] <= prev[v]
            prev = cur

    def test_longer_but_fewer_hops_path_chosen(self):
        # 0->1->2 is length 2 but 2 hops; 0->2 is length 5, 1 hop
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        assert spiking_khop_pseudo(g, 0, 1).dist[2] == 5
        assert spiking_khop_pseudo(g, 0, 2).dist[2] == 2

    def test_cycle_does_not_loop_forever(self):
        g = cycle_graph(5, max_length=2, seed=0)
        r = spiking_khop_pseudo(g, 0, 50)
        assert (r.dist >= 0).all()

    def test_ttl_propagation_through_revisit_times(self):
        """A later arrival with larger TTL must still propagate (the
        multiple-spike subtlety Section 4.1 highlights)."""
        # vertex 2 hears first via the long-hop chain (short length), then
        # via the direct edge (longer length but more TTL left); only the
        # direct arrival leaves enough TTL to reach 3 within k=2.
        g = WeightedDigraph(
            4,
            [
                (0, 1, 1),
                (1, 2, 1),  # 2 hops, length 2
                (0, 2, 3),  # 1 hop, length 3
                (2, 3, 1),
            ],
        )
        r = spiking_khop_pseudo(g, 0, 2)
        assert r.dist[2] == 2  # first arrival
        assert r.dist[3] == 4  # reached via the 1-hop arrival at 2 (3 + 1)

    def test_target_short_circuits(self, small_graph):
        r = spiking_khop_pseudo(small_graph, 0, 4, target=1)
        assert r.dist[1] == 2

    def test_invalid_args(self, small_graph):
        with pytest.raises(ValidationError):
            spiking_khop_pseudo(small_graph, 99, 2)
        with pytest.raises(ValidationError):
            spiking_khop_pseudo(small_graph, 0, -1)


class TestCostModel:
    def test_scale_factor_log_k(self):
        assert ttl_scale_factor(2) == 1
        assert ttl_scale_factor(8) == 3
        assert ttl_scale_factor(9) == 4
        assert ttl_scale_factor(1) >= 1

    def test_ticks_charged_with_log_factor(self, small_graph):
        k = 4
        r = spiking_khop_pseudo(small_graph, 0, k)
        raw = r.cost.extras["raw_ticks"]
        assert r.cost.simulated_ticks == raw * ttl_scale_factor(k)

    def test_neuron_count_m_log_k(self, small_graph):
        k = 8
        r = spiking_khop_pseudo(small_graph, 0, k)
        bits = r.cost.message_bits
        assert bits == 3  # TTL values 0..7
        assert r.cost.neuron_count == small_graph.n + small_graph.m * bits

    def test_spikes_proportional_to_messages(self):
        g = path_graph(5, max_length=1, seed=0)
        r = spiking_khop_pseudo(g, 0, 4)
        # one message per edge traversal, each of `bits` spikes
        assert r.cost.spike_count == 4 * r.cost.message_bits
