"""End-to-end integration tests across the package layers."""

import numpy as np
import pytest

from repro.algorithms import (
    spiking_khop_pseudo,
    spiking_sssp_pseudo,
    reconstruct_path,
)
from repro.analysis import (
    ComparisonRow,
    conventional_khop_time,
    distance_lower_bound_khop,
    neuro_khop_poly_time,
    render_table,
)
from repro.baselines import bellman_ford_khop, dijkstra
from repro.distance_model import (
    bellman_ford_khop_distance,
    bellman_ford_lower_bound,
)
from repro.embedding import embedded_sssp
from repro.hardware import energy_comparison
from repro.workloads import gnp_graph, road_like_graph
from tests.conftest import ref_khop, ref_sssp


class TestFullPipelineSSSP:
    """One workload through every SSSP implementation + the embedding."""

    @pytest.fixture(scope="class")
    def workload(self):
        return road_like_graph(4, 5, max_length=6, seed=13)

    def test_all_layers_agree(self, workload):
        native = spiking_sssp_pseudo(workload, 0)
        crossbar = embedded_sssp(workload, 0)
        conv, _ = dijkstra(workload, 0)
        expect = ref_sssp(workload, 0)
        assert np.array_equal(native.dist, expect)
        assert np.array_equal(crossbar.dist, expect)
        assert np.array_equal(conv, expect)

    def test_embedding_charges_more_time(self, workload):
        native = spiking_sssp_pseudo(workload, 0)
        crossbar = embedded_sssp(workload, 0)
        assert crossbar.cost.simulated_ticks > native.cost.simulated_ticks
        assert crossbar.cost.neuron_count > native.cost.neuron_count

    def test_path_reconstruction_end_to_end(self, workload):
        r = spiking_sssp_pseudo(workload, 0)
        target = int(np.argmax(r.dist))  # farthest reachable vertex
        path = reconstruct_path(workload, r.dist, 0, target)
        assert path is not None and path[0] == 0 and path[-1] == target


class TestTable1StyleComparison:
    """A miniature of the Table-1 benches: measured costs both sides."""

    def test_khop_row_with_data_movement(self):
        g = gnp_graph(20, 0.3, max_length=4, seed=21)
        k = 4
        neuro = spiking_khop_pseudo(g, 0, k)
        _, conv_cost = bellman_ford_khop_distance(g, 0, k)
        lb = bellman_ford_lower_bound(g.m, k, 4)
        assert conv_cost >= lb
        row = ComparisonRow(
            problem="k-hop SSSP (pseudo, DISTANCE)",
            conventional=conv_cost,
            neuromorphic=neuro.cost.with_embedding(g.n).total_time,
            lower_bound=lb,
        )
        text = render_table([row])
        assert "k-hop SSSP" in text

    def test_khop_row_formulas_track_measurement_direction(self):
        """On a dense graph with large k, the predicted neuromorphic win
        (log(nU) = o(k)) must match the measured op-count comparison."""
        g = gnp_graph(24, 0.5, max_length=2, seed=22, ensure_source_reaches=True)
        k = 20
        neuro = spiking_khop_pseudo(g, 0, k)
        _, conv_ops = bellman_ford_khop(g, 0, k)
        predicted_conv = conventional_khop_time(k, g.m)
        predicted_neuro = neuro_khop_poly_time(g.n, g.m, g.max_length(), k,
                                               data_movement=False)
        # formulas and measurements agree on the winner
        assert (predicted_neuro < predicted_conv) == (
            neuro.cost.total_time < conv_ops.total
        )


class TestEnergyPipeline:
    def test_energy_comparison_from_real_run(self):
        g = gnp_graph(30, 0.2, max_length=5, seed=30, ensure_source_reaches=True)
        neuro = spiking_sssp_pseudo(g, 0)
        _, ops = dijkstra(g, 0)
        table = energy_comparison(neuro.cost, ops)
        loihi = table["Loihi"]["joules"]
        cpu = table["Core i7-9700T"]["joules"]
        assert loihi is not None and cpu is not None
        assert loihi < cpu  # the appendix's qualitative conclusion

    def test_consistency_of_khop_references(self):
        g = gnp_graph(15, 0.3, max_length=4, seed=31)
        for k in (1, 3):
            assert np.array_equal(
                spiking_khop_pseudo(g, 0, k).dist, ref_khop(g, 0, k)
            )
