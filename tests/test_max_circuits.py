"""Tests of the Section-5 max/min circuits (Theorems 5.1 and 5.2, Table 2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    CircuitBuilder,
    brute_force_max,
    brute_force_min,
    masked_max,
    masked_min,
    run_circuit,
    wired_or_max,
    wired_or_min,
)
from repro.errors import CircuitError

BUILDERS = {
    "brute_max": (brute_force_max, max),
    "brute_min": (brute_force_min, min),
    "wired_max": (wired_or_max, max),
    "wired_min": (wired_or_min, min),
}


def build_plain(kind, d, width, with_winners=False):
    fn, pyfn = BUILDERS[kind]
    b = CircuitBuilder()
    ins = [b.input_bits(f"x{i}", width) for i in range(d)]
    res = fn(b, ins)
    b.output_bits("out", res.out_bits)
    if with_winners and res.winners is not None:
        for i, w in enumerate(res.winners):
            b.output_bits(f"win{i}", [w], aligned=False)
    return b, pyfn


class TestExhaustiveSmall:
    @pytest.mark.parametrize("kind", list(BUILDERS))
    def test_two_inputs_two_bits_exhaustive(self, kind):
        b, pyfn = build_plain(kind, 2, 2)
        for x in range(4):
            for y in range(4):
                got = run_circuit(b, {"x0": x, "x1": y})["out"]
                assert got == pyfn(x, y), (kind, x, y)

    @pytest.mark.parametrize("kind", list(BUILDERS))
    def test_three_inputs_ties(self, kind):
        b, pyfn = build_plain(kind, 3, 3)
        for vals in [(5, 5, 5), (0, 0, 0), (7, 7, 0), (0, 7, 7), (3, 3, 4)]:
            got = run_circuit(b, {f"x{i}": v for i, v in enumerate(vals)})["out"]
            assert got == pyfn(vals), (kind, vals)

    @pytest.mark.parametrize("kind", list(BUILDERS))
    def test_single_input_identity(self, kind):
        b, _ = build_plain(kind, 1, 3)
        for v in range(8):
            assert run_circuit(b, {"x0": v})["out"] == v


class TestRandomized:
    @given(
        kind=st.sampled_from(sorted(BUILDERS)),
        d=st.integers(min_value=2, max_value=5),
        width=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_python(self, kind, d, width, data):
        b, pyfn = build_plain(kind, d, width)
        vals = [
            data.draw(st.integers(min_value=0, max_value=2**width - 1))
            for _ in range(d)
        ]
        got = run_circuit(b, {f"x{i}": v for i, v in enumerate(vals)})["out"]
        assert got == pyfn(vals)


class TestWinners:
    def test_brute_force_unique_winner_smallest_index(self):
        b = CircuitBuilder()
        ins = [b.input_bits(f"x{i}", 3) for i in range(3)]
        res = brute_force_max(b, ins)
        b.output_bits("out", res.out_bits)
        for i, w in enumerate(res.winners):
            b.output_bits(f"w{i}", [w], aligned=False)
        r = run_circuit(b, {"x0": 4, "x1": 6, "x2": 6})
        assert r["out"] == 6
        assert (r["w0"], r["w1"], r["w2"]) == (0, 1, 0)  # tie -> index 1, not 2

    def test_wired_or_marks_all_tied_maxima(self):
        b = CircuitBuilder()
        ins = [b.input_bits(f"x{i}", 3) for i in range(3)]
        res = wired_or_max(b, ins)
        b.output_bits("out", res.out_bits)
        for i, w in enumerate(res.winners):
            b.output_bits(f"w{i}", [w], aligned=False)
        r = run_circuit(b, {"x0": 6, "x1": 2, "x2": 6})
        assert r["out"] == 6
        assert (r["w0"], r["w1"], r["w2"]) == (1, 0, 1)


class TestSizesAndDepths:
    """The Table 2 resource claims."""

    def test_brute_force_constant_depth(self):
        # depth must not grow with width or input count
        depths = set()
        for d, width in [(2, 2), (4, 4), (5, 8)]:
            b = CircuitBuilder()
            ins = [b.input_bits(f"x{i}", width) for i in range(d)]
            res = brute_force_max(b, ins)
            b.output_bits("out", res.out_bits)
            depths.add(b.depth)
        assert len(depths) == 1
        assert depths.pop() <= 4

    def test_wired_or_depth_linear_in_width(self):
        measured = {}
        for width in (2, 4, 6):  # arithmetic spacing: equal depth increments
            b = CircuitBuilder()
            ins = [b.input_bits(f"x{i}", width) for i in range(3)]
            res = wired_or_max(b, ins)
            b.output_bits("out", res.out_bits)
            measured[width] = b.depth
        assert measured[4] - measured[2] == measured[6] - measured[4]
        assert measured[6] > measured[4] > measured[2]

    def test_brute_force_size_quadratic_in_d(self):
        sizes = {}
        for d in (2, 4, 8):
            b = CircuitBuilder()
            ins = [b.input_bits(f"x{i}", 3) for i in range(d)]
            brute_force_max(b, ins)
            sizes[d] = b.size
        # comparator count d(d-1) dominates: superlinear growth
        assert sizes[8] - sizes[4] > 2 * (sizes[4] - sizes[2]) * 0.9

    def test_wired_or_size_linear_in_d_times_width(self):
        def size(d, width):
            b = CircuitBuilder()
            ins = [b.input_bits(f"x{i}", width) for i in range(d)]
            wired_or_max(b, ins)
            return b.size

        assert size(8, 4) < 2.5 * size(4, 4)  # linear in d
        assert size(4, 8) < 2.5 * size(4, 4)  # linear in width


class TestMasked:
    @pytest.mark.parametrize("style", ["wired", "brute"])
    @pytest.mark.parametrize("agg", ["min", "max"])
    def test_masked_respects_valid_wires(self, style, agg):
        fn = masked_min if agg == "min" else masked_max
        pyfn = min if agg == "min" else max
        b = CircuitBuilder()
        ins = [b.input_bits(f"x{i}", 3) for i in range(3)]
        vs = b.input_bits("valid", 3)
        res = fn(b, ins, vs, style=style)
        b.output_bits("out", res.out_bits)
        b.output_bits("v", [res.valid], aligned=False)
        rng = random.Random(42)
        for _ in range(12):
            vals = [rng.randrange(8) for _ in range(3)]
            mask = [rng.randrange(2) for _ in range(3)]
            r = run_circuit(b, {**{f"x{i}": v for i, v in enumerate(vals)},
                                "valid": mask})
            chosen = [v for v, m in zip(vals, mask) if m]
            if chosen:
                assert r["v"] == 1
                assert r["out"] == pyfn(chosen), (style, agg, vals, mask)
            else:
                assert r["v"] == 0
                assert r["out"] == 0

    def test_masked_min_all_ones_vs_invalid_tie(self):
        # the documented corner: every valid value is the all-ones maximum
        b = CircuitBuilder()
        ins = [b.input_bits(f"x{i}", 3) for i in range(2)]
        vs = b.input_bits("valid", 2)
        res = masked_min(b, ins, vs)
        b.output_bits("out", res.out_bits)
        b.output_bits("v", [res.valid], aligned=False)
        r = run_circuit(b, {"x0": 7, "x1": 0, "valid": [1, 0]})
        assert r["v"] == 1 and r["out"] == 7

    def test_masked_requires_matching_valids(self):
        b = CircuitBuilder()
        ins = [b.input_bits(f"x{i}", 2) for i in range(3)]
        vs = b.input_bits("valid", 2)
        with pytest.raises(CircuitError):
            masked_min(b, ins, vs)

    def test_unknown_style_rejected(self):
        b = CircuitBuilder()
        ins = [b.input_bits("x0", 2)]
        vs = b.input_bits("valid", 1)
        with pytest.raises(CircuitError):
            masked_min(b, ins, vs, style="quantum")


class TestValidation:
    def test_empty_inputs_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            brute_force_max(b, [])

    def test_ragged_widths_rejected(self):
        b = CircuitBuilder()
        a = b.input_bits("a", 2)
        c = b.input_bits("c", 3)
        with pytest.raises(CircuitError):
            wired_or_max(b, [a, c])
