"""Tests of the exception hierarchy contract."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in (
        "ValidationError",
        "SimulationError",
        "UnsupportedNetworkError",
        "CircuitError",
        "GraphError",
        "EmbeddingError",
        "MachineError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError), name


def test_value_like_errors_are_value_errors():
    for name in ("ValidationError", "CircuitError", "GraphError", "EmbeddingError"):
        assert issubclass(getattr(errors, name), ValueError), name


def test_runtime_like_errors_are_runtime_errors():
    for name in ("SimulationError", "MachineError"):
        assert issubclass(getattr(errors, name), RuntimeError), name


def test_unsupported_network_is_simulation_error():
    assert issubclass(errors.UnsupportedNetworkError, errors.SimulationError)


def test_catching_repro_error_covers_library_failures():
    from repro.workloads import WeightedDigraph

    with pytest.raises(errors.ReproError):
        WeightedDigraph(2, [(0, 1, -5)])
