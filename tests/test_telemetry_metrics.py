"""Tests of the metrics registry and its context-scoped activation."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    active_registry,
    counter_inc,
    gauge_set,
    observe,
    timer,
    use_registry,
)
from repro.telemetry.metrics import _NULL_TIMER


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.counter_inc("a")
        reg.counter_inc("a", 4)
        assert reg.counters["a"] == 5

    def test_gauges_hold_last_value(self):
        reg = MetricsRegistry()
        reg.gauge_set("depth", 3)
        reg.gauge_set("depth", 7)
        assert reg.gauges["depth"] == 7.0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in [5.0, 1.0, 3.0]:
            reg.observe("h", v)
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["count"] == 3
        assert snap["min"] == 1.0 and snap["max"] == 5.0
        assert snap["mean"] == pytest.approx(3.0)
        assert snap["p50"] == 3.0

    def test_timer_records_positive_seconds(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        assert reg.timer_total("t") >= 0.0
        assert reg.snapshot()["timers"]["t"]["count"] == 1
        assert reg.timer_names() == ["t"]

    def test_merge_folds_everything(self):
        a, b = MetricsRegistry("a"), MetricsRegistry("b")
        a.counter_inc("c", 1)
        b.counter_inc("c", 2)
        b.gauge_set("g", 9)
        b.observe("h", 1.0)
        b.timer_observe("t", 0.5)
        a.merge(b)
        assert a.counters["c"] == 3
        assert a.gauges["g"] == 9.0
        assert a.timer_total("t") == 0.5
        assert a.snapshot()["histograms"]["h"]["count"] == 1

    def test_reset_clears_all(self):
        reg = MetricsRegistry()
        reg.counter_inc("c")
        reg.gauge_set("g", 1)
        reg.observe("h", 1)
        reg.timer_observe("t", 1)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert snap["histograms"] == {} and snap["timers"] == {}

    def test_snapshot_is_json_serializable(self):
        import json

        reg = MetricsRegistry("s")
        reg.counter_inc("c", 2)
        reg.observe("h", 0.25)
        json.dumps(reg.snapshot())


class TestContextScoping:
    def test_no_registry_active_by_default(self):
        assert active_registry() is None

    def test_helpers_are_noops_without_registry(self):
        counter_inc("orphan", 10)
        gauge_set("orphan", 1.0)
        observe("orphan", 1.0)
        assert timer("orphan") is _NULL_TIMER
        with timer("orphan"):
            pass
        assert active_registry() is None

    def test_use_registry_scopes_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert active_registry() is reg
            counter_inc("hit")
            with timer("phase.x"):
                pass
        assert active_registry() is None
        counter_inc("hit")  # no-op: registry no longer active
        assert reg.counters["hit"] == 1
        assert reg.snapshot()["timers"]["phase.x"]["count"] == 1

    def test_nesting_restores_outer_registry(self):
        outer, inner = MetricsRegistry("outer"), MetricsRegistry("inner")
        with use_registry(outer):
            counter_inc("c")
            with use_registry(inner):
                counter_inc("c", 5)
                assert active_registry() is inner
            assert active_registry() is outer
            counter_inc("c")
        assert outer.counters["c"] == 2
        assert inner.counters["c"] == 5

    def test_restores_even_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(reg):
                raise RuntimeError("boom")
        assert active_registry() is None
