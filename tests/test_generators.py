"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.workloads import (
    complete_graph,
    cycle_graph,
    gnp_graph,
    grid_graph,
    layered_dag,
    path_graph,
    power_law_graph,
    road_like_graph,
    star_graph,
)


class TestGnp:
    def test_seed_reproducible(self):
        a = gnp_graph(30, 0.2, max_length=9, seed=5)
        b = gnp_graph(30, 0.2, max_length=9, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_graph(30, 0.2, max_length=9, seed=5)
        b = gnp_graph(30, 0.2, max_length=9, seed=6)
        assert a != b

    def test_density_extremes(self):
        assert gnp_graph(10, 0.0, seed=1).m == 0
        g = gnp_graph(10, 1.0, seed=1)
        assert g.m == 90  # complete digraph without self-loops

    def test_no_self_loops(self):
        g = gnp_graph(25, 0.5, seed=2)
        assert not g.has_self_loops()

    def test_lengths_in_range(self):
        g = gnp_graph(20, 0.3, max_length=7, seed=3)
        assert g.min_length() >= 1 and g.max_length() <= 7

    def test_source_reachability_chain(self):
        import networkx as nx

        g = gnp_graph(40, 0.01, max_length=3, seed=4, ensure_source_reaches=True)
        reach = nx.descendants(g.to_networkx(), 0)
        assert len(reach) == g.n - 1

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            gnp_graph(5, 1.5, seed=0)

    def test_invalid_max_length(self):
        with pytest.raises(GraphError):
            gnp_graph(5, 0.5, max_length=0, seed=0)

    def test_large_n_sampling_path(self):
        g = gnp_graph(3000, 0.0005, max_length=4, seed=9)
        assert g.n == 3000
        assert not g.has_self_loops()


class TestStructured:
    def test_grid_edge_count_bidirectional(self):
        g = grid_graph(3, 4, seed=0)
        # 3*3 horizontal + 2*4 vertical, both directions
        assert g.m == 2 * (3 * 3 + 2 * 4)

    def test_grid_unidirectional(self):
        g = grid_graph(3, 4, seed=0, bidirectional=False)
        assert g.m == 3 * 3 + 2 * 4

    def test_grid_neighbors(self):
        g = grid_graph(3, 3, seed=0)
        heads, _ = g.out_edges(4)  # center vertex
        assert sorted(heads.tolist()) == [1, 3, 5, 7]

    def test_path_graph_structure(self):
        g = path_graph(5, seed=0)
        assert g.m == 4
        assert sorted((u, v) for u, v, _ in g.edges()) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_cycle_graph_structure(self):
        g = cycle_graph(4, seed=0)
        assert g.m == 4
        assert (0, 1) in [(u, v) for u, v, _ in g.edges()]
        assert (3, 0) in [(u, v) for u, v, _ in g.edges()]

    def test_star_graph_structure(self):
        g = star_graph(6, seed=0)
        assert g.m == 5
        assert g.out_degree(0) == 5

    def test_complete_graph(self):
        g = complete_graph(5, seed=0)
        assert g.m == 20
        assert not g.has_self_loops()

    def test_road_like_contains_grid(self):
        g = road_like_graph(4, 4, max_length=5, seed=1)
        base = grid_graph(4, 4, max_length=5, seed=1)
        assert g.m > base.m  # highways added
        assert g.n == base.n

    def test_power_law_degree_spread(self):
        g = power_law_graph(60, attach=2, seed=7)
        degs = np.diff(g.indptr)
        assert degs.max() >= 3 * max(1, int(np.median(degs)))

    def test_power_law_requires_enough_nodes(self):
        with pytest.raises(GraphError):
            power_law_graph(2, attach=2, seed=0)


class TestLayeredDag:
    def test_shape(self):
        g = layered_dag(4, 5, seed=0)
        assert g.n == 1 + 4 * 5

    def test_acyclic(self):
        import networkx as nx

        g = layered_dag(5, 4, seed=1)
        assert nx.is_directed_acyclic_graph(g.to_networkx())

    def test_every_layer_vertex_has_out_edge_except_last(self):
        g = layered_dag(3, 4, seed=2, density=0.1)
        for layer in range(2):
            for i in range(4):
                vid = 1 + layer * 4 + i
                assert g.out_degree(vid) >= 1

    def test_hop_structure(self):
        # every vertex in layer l is exactly l+1 hops from the source
        import networkx as nx

        g = layered_dag(3, 3, seed=3, density=1.0)
        nxg = g.to_networkx()
        hops = nx.single_source_shortest_path_length(nxg, 0)
        for layer in range(3):
            for i in range(3):
                assert hops[1 + layer * 3 + i] == layer + 1


class TestSmallWorld:
    def test_structure(self):
        from repro.workloads import small_world_graph

        g = small_world_graph(30, nearest=4, rewire=0.2, max_length=3, seed=1)
        assert g.n == 30
        assert g.m >= 30 * 4  # both orientations of ~n*nearest/2 edges
        assert not g.has_self_loops()

    def test_seeded(self):
        from repro.workloads import small_world_graph

        a = small_world_graph(20, seed=3)
        b = small_world_graph(20, seed=3)
        assert a == b

    def test_nearest_too_large(self):
        from repro.workloads import small_world_graph

        with pytest.raises(GraphError):
            small_world_graph(4, nearest=5, seed=0)

    def test_small_hop_diameter(self):
        import networkx as nx

        from repro.workloads import small_world_graph

        g = small_world_graph(64, nearest=6, rewire=0.3, seed=5)
        ecc = nx.eccentricity(g.to_networkx().to_undirected())
        assert max(ecc.values()) <= 8  # log-ish diameter


class TestBottleneckFlowNetwork:
    def test_known_max_flow(self):
        from repro.algorithms.flow import tidal_flow
        from repro.workloads import bottleneck_flow_network

        for seed in range(4):
            g = bottleneck_flow_network(4, 3, max_capacity=9, bottleneck=2, seed=seed)
            r = tidal_flow(g, 0, g.n - 1)
            assert r.flow_value == 3 * 2  # width * bottleneck

    def test_single_stage(self):
        from repro.algorithms.flow import tidal_flow
        from repro.workloads import bottleneck_flow_network

        g = bottleneck_flow_network(1, 2, max_capacity=5, bottleneck=1, seed=0)
        assert tidal_flow(g, 0, g.n - 1).flow_value == 2

    def test_validation(self):
        from repro.workloads import bottleneck_flow_network

        with pytest.raises(GraphError):
            bottleneck_flow_network(0, 3, seed=0)
        with pytest.raises(GraphError):
            bottleneck_flow_network(2, 2, max_capacity=3, bottleneck=3, seed=0)
