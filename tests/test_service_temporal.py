"""Static time-budget admission: the temporal gate of QueryServer.

A request whose *certified* worst-case run length cannot fit its deadline
must be rejected synchronously at submit, with a structured
:class:`~repro.errors.TemporalBudgetError` and without ever starting a
simulator.  Requests that do fit must be answered identically to a solo
run, the bound must be memoized per resident, fault-carrying requests are
exempt (injected spikes break the causation lemma), and quiescent-stop
horizons are clamped down to the certified bound.
"""

import numpy as np
import pytest

from repro.core.transient import SpikeDrop
from repro.errors import TemporalBudgetError, classify_exception
from repro.service import (
    QueryRequest,
    QueryServer,
    ServiceClient,
    execute_solo,
    plan_request,
)
from repro.workloads import gnp_graph


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(20, 0.25, max_length=7, seed=11, ensure_source_reaches=True)


def make_server(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("max_batch", 8)
    kw.setdefault("linger_s", 0.005)
    kw.setdefault("result_cache_size", 0)
    return QueryServer(**kw)


def test_over_budget_request_rejected_statically(graph):
    srv = make_server(tick_rate=10.0)  # 0.5 s deadline -> 5-tick budget
    srv.register_graph("g", graph)
    with srv:
        with pytest.raises(TemporalBudgetError) as exc_info:
            srv.submit(
                QueryRequest(kind="sssp", graph_id="g", source=0, deadline_s=0.5)
            )
        err = exc_info.value
        assert err.certified_ticks > err.budget_ticks == 5
        assert classify_exception(err) == ("TEMPORAL_BUDGET", False)
        stats = srv.stats()
    counters = stats["metrics"]["counters"]
    # rejected at admission: nothing was simulated or even dispatched
    assert counters.get("service.temporal.rejections") == 1
    assert counters.get("service.requests.completed", 0) == 0
    assert counters.get("service.batches.dispatched", 0) == 0


def test_within_budget_request_matches_solo(graph):
    srv = make_server(tick_rate=1e6)  # generous budget: everything fits
    srv.register_graph("g", graph)
    with srv:
        cli = ServiceClient(srv)
        res = cli.submit_sssp("g", 0, deadline_s=30.0).result(60)
        assert res.ok, res.error
        solo = execute_solo(
            plan_request(
                QueryRequest(kind="sssp", graph_id="g", source=0), {"g": graph}, {}
            )
        )
        assert np.array_equal(res.dist, solo["dist"])
        stats = srv.stats()
    temporal = stats["temporal"]
    assert temporal["enabled"] and temporal["tick_rate"] == 1e6
    assert any(b is not None for b in temporal["bounds"].values())


def test_bound_memoized_per_resident(graph):
    srv = make_server(tick_rate=1e6)
    srv.register_graph("g", graph)
    with srv:
        cli = ServiceClient(srv)
        for s in (0, 1, 2):  # same resident family, three sources
            assert cli.submit_sssp("g", s, deadline_s=30.0).result(60).ok
        counters = srv.stats()["metrics"]["counters"]
    assert counters.get("service.temporal.analyzed") == 1


def test_fault_requests_skip_the_gate(graph):
    # the same deadline that rejects a clean request admits a faulty one:
    # injected spikes break the causation lemma, so no static claim holds
    srv = make_server(tick_rate=10.0)
    srv.register_graph("g", graph)
    with srv:
        req = QueryRequest(
            kind="sssp",
            graph_id="g",
            source=0,
            deadline_s=0.5,
            faults=SpikeDrop(0.0, seed=1),
        )
        ticket = srv.submit(req)  # no TemporalBudgetError
        res = ticket.result(60)
    assert res.ok or res.error_code == "TIMEOUT"


def test_gate_can_be_disabled(graph):
    srv = make_server(tick_rate=10.0, temporal_admission=False)
    srv.register_graph("g", graph)
    with srv:
        ticket = srv.submit(
            QueryRequest(kind="sssp", graph_id="g", source=0, deadline_s=0.5)
        )
        res = ticket.result(60)
        stats = srv.stats()
    assert not stats["temporal"]["enabled"]
    assert stats["metrics"]["counters"].get("service.temporal.analyzed", 0) == 0
    # without the static gate the deadline is enforced dynamically instead
    assert res.ok or res.error_code == "TIMEOUT"


def test_no_deadline_means_no_rejection(graph):
    # tick_rate set, but an undeadlined request only gets the clamp path
    srv = make_server(tick_rate=10.0)
    srv.register_graph("g", graph)
    with srv:
        cli = ServiceClient(srv)
        res = cli.submit_sssp("g", 0).result(60)
    assert res.ok, res.error


def test_tick_rate_validation():
    with pytest.raises(Exception):
        make_server(tick_rate=0.0)
    with pytest.raises(Exception):
        make_server(tick_rate=-5.0)
