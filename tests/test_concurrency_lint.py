"""Self-test of the SC2xx lock-discipline lint (tools/concurrency_lint.py).

A lint that silently matches nothing is worse than no lint, so every rule
is exercised positively (a seeded violation must be found) and negatively
(the idioms the serving layer legitimately uses must stay clean), plus the
repo gate itself: the real ``repro.service`` tree must lint clean.
"""

import sys
import textwrap
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import concurrency_lint as cl  # noqa: E402


def _lint_src(tmp_path, source):
    f = tmp_path / "mod.py"
    f.write_text(textwrap.dedent(source))
    return cl.lint_file(f)


def _codes(findings):
    return [f.code for f in findings]


def test_sc201_result_under_lock(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        def bad(self, ticket):
            with self._lock:
                return ticket.result(5)
        """,
    )
    assert _codes(findings) == ["SC201"]


def test_sc202_submit_under_lock(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        def bad(self, job):
            with self._state_lock:
                self.pool.submit(job)
        """,
    )
    assert _codes(findings) == ["SC202"]


def test_sc203_blocking_io_under_lock(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        def bad(self, data):
            with self._send_lock:
                self._sock.sendall(data)
                self._sock.recv(4096)
        """,
    )
    assert _codes(findings) == ["SC203", "SC203"]


def test_sc204_nested_plain_lock(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def bad(self):
                with self._lock:
                    with self._lock:
                        pass
        """,
    )
    assert _codes(findings) == ["SC204"]


def test_sc204_exempts_module_rlocks(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.RLock()

            def fine(self):
                with self._lock:
                    with self._lock:
                        pass
        """,
    )
    assert findings == []


def test_sc205_sleep_under_lock_is_warning(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        import time

        def dubious(self):
            with self._lock:
                time.sleep(0.1)
        """,
    )
    assert _codes(findings) == ["SC205"]
    assert findings[0].severity == "warning"


def test_nested_function_escapes_lexical_lock(tmp_path):
    # a closure defined under a lock runs later, without the lock held
    findings = _lint_src(
        tmp_path,
        """
        def fine(self, pool, job):
            with self._lock:
                cb = lambda: pool.submit(job)
            return cb
        """,
    )
    assert findings == []


def test_release_before_blocking_is_clean(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        def fine(self, ticket):
            with self._lock:
                state = self._state
            return ticket.result(5)
        """,
    )
    assert findings == []


def test_allow_comment_suppresses_named_code(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        def documented(self, data):
            with self._send_lock:
                self._sock.sendall(data)  # sc2xx: allow sc203
        """,
    )
    assert findings == []


def test_allow_comment_does_not_cover_other_codes(tmp_path):
    findings = _lint_src(
        tmp_path,
        """
        def bad(self, ticket):
            with self._lock:
                ticket.result(5)  # sc2xx: allow sc203
        """,
    )
    assert _codes(findings) == ["SC201"]


def test_service_tree_lints_clean():
    rc = cl.main([str(cl.DEFAULT_PATHS[0])])
    assert rc == 0


@pytest.mark.parametrize("code", sorted(cl.RULES))
def test_every_rule_has_catalog_entry(code):
    rule, severity = cl.RULES[code]
    assert rule and severity in ("error", "warning")
