"""Tests of the Table-3 platform registry and the energy model."""

import pytest

from repro.baselines import OpCounter
from repro.core.cost import CostReport
from repro.errors import ValidationError
from repro.hardware import (
    CORE_I7_9700T,
    LOIHI,
    PLATFORMS,
    SPINNAKER1,
    SPINNAKER2,
    TRUENORTH,
    chips_required,
    cpu_energy_joules,
    energy_comparison,
    spike_energy_joules,
)


class TestRegistry:
    def test_all_five_platforms_present(self):
        assert set(PLATFORMS) == {
            "TrueNorth",
            "Loihi",
            "SpiNNaker 1",
            "SpiNNaker 2",
            "Core i7-9700T",
        }

    def test_table3_neuron_counts(self):
        assert TRUENORTH.neurons_per_chip == 256 * 4096
        assert LOIHI.neurons_per_chip == 1024 * 128
        assert SPINNAKER1.neurons_per_chip == 1000 * 16
        assert SPINNAKER2.neurons_per_chip == 800_000

    def test_table3_energy_constants(self):
        assert TRUENORTH.pj_per_spike_mid == 26.0
        assert LOIHI.pj_per_spike_mid == 23.6
        assert SPINNAKER1.pj_per_spike_mid == 7000.0
        assert SPINNAKER2.pj_per_spike_mid is None  # unreported

    def test_power_ranges(self):
        assert TRUENORTH.power_watts_mid == pytest.approx(0.110)
        assert CORE_I7_9700T.power_watts_mid == 35.0

    def test_cpu_flag(self):
        assert CORE_I7_9700T.is_cpu
        assert not LOIHI.is_cpu


class TestEnergyMath:
    def test_spike_energy(self):
        # 10^9 spikes on Loihi: 1e9 * 23.6e-12 J
        assert spike_energy_joules(10**9, LOIHI) == pytest.approx(23.6e-3)

    def test_spike_energy_unreported_platform(self):
        assert spike_energy_joules(100, SPINNAKER2) is None

    def test_cpu_energy(self):
        # 4.3e9 ops at 4.3 GHz = 1 second at 35 W
        assert cpu_energy_joules(4_300_000_000, CORE_I7_9700T) == pytest.approx(35.0)

    def test_cpu_energy_ops_per_cycle(self):
        e1 = cpu_energy_joules(10**9, CORE_I7_9700T, ops_per_cycle=1)
        e4 = cpu_energy_joules(10**9, CORE_I7_9700T, ops_per_cycle=4)
        assert e4 == pytest.approx(e1 / 4)

    def test_cpu_energy_needs_clock(self):
        assert cpu_energy_joules(100, LOIHI) is None  # asynchronous

    def test_negative_counts_rejected(self):
        with pytest.raises(ValidationError):
            spike_energy_joules(-1, LOIHI)
        with pytest.raises(ValidationError):
            cpu_energy_joules(-1, CORE_I7_9700T)

    def test_chips_required(self):
        assert chips_required(1, LOIHI) == 1
        assert chips_required(131072, LOIHI) == 1
        assert chips_required(131073, LOIHI) == 2

    def test_chips_required_cpu_none(self):
        assert chips_required(100, CORE_I7_9700T) is None


class TestComparison:
    def test_energy_comparison_structure(self):
        cost = CostReport(
            algorithm="sssp_pseudo",
            simulated_ticks=100,
            loading_ticks=50,
            neuron_count=1000,
            synapse_count=5000,
            spike_count=1000,
        )
        ops = OpCounter(relaxations=10**6)
        table = energy_comparison(cost, ops)
        assert set(table) == set(PLATFORMS)
        assert table["Loihi"]["joules"] == pytest.approx(1000 * 23.6e-12)
        assert table["Core i7-9700T"]["joules"] > 0

    def test_neuromorphic_energy_orders_of_magnitude_below_cpu(self):
        """The appendix's qualitative claim, at representative scales."""
        cost = CostReport(
            algorithm="x",
            simulated_ticks=10**4,
            loading_ticks=10**4,
            neuron_count=10**5,
            synapse_count=10**6,
            spike_count=10**6,
        )
        ops = OpCounter(relaxations=10**6, comparisons=10**6)
        table = energy_comparison(cost, ops)
        assert table["Loihi"]["joules"] * 100 < table["Core i7-9700T"]["joules"]


class TestWallTime:
    def test_truenorth_millisecond_ticks(self):
        from repro.hardware.energy import wall_time_estimate

        # 1 kHz clock: 1000 ticks = 1 second
        assert wall_time_estimate(1000, TRUENORTH) == pytest.approx(1.0)

    def test_asynchronous_platform_needs_tick(self):
        from repro.hardware.energy import wall_time_estimate

        assert wall_time_estimate(100, LOIHI) is None
        assert wall_time_estimate(100, LOIHI, tick_seconds=1e-6) == pytest.approx(1e-4)

    def test_validation(self):
        from repro.errors import ValidationError
        from repro.hardware.energy import wall_time_estimate

        with pytest.raises(ValidationError):
            wall_time_estimate(-1, TRUENORTH)
