"""Unit tests for the batch front end, engine dispatch, and build cache."""

import numpy as np
import pytest

from repro.core import (
    BuildCache,
    Network,
    StopReason,
    default_build_cache,
    simulate,
    simulate_batch,
    simulate_dense_batch,
    structure_fingerprint,
)
from repro.core.batch import _per_item
from repro.core.transient import SpikeDrop
from repro.core.watchdog import Watchdog
from repro.errors import ValidationError
from repro.workloads import WeightedDigraph


def chain_net(delay=1, k=3, pacemaker=False):
    """k one-shot neurons in a line; optionally one pacemaker appended."""
    net = Network()
    ids = [net.add_neuron(one_shot=True) for _ in range(k)]
    for a, b in zip(ids, ids[1:]):
        net.add_synapse(a, b, delay=delay)
    if pacemaker:
        net.add_neuron(v_threshold=-1.0)  # fires every tick unprompted
    return net, ids


# ---------------------------------------------------------------- dispatch #


def test_batch_empty_returns_empty_list():
    net, _ = chain_net()
    assert simulate_batch(net, [], max_steps=10) == []
    assert simulate_dense_batch(net.compile(), [], max_steps=10) == []


def test_batch_auto_picks_event_for_long_delays():
    net, ids = chain_net(delay=100)
    auto = simulate_batch(net, [[ids[0]]], max_steps=500)
    event = simulate_batch(net, [[ids[0]]], max_steps=500, engine="event")
    dense = simulate_batch(net, [[ids[0]]], max_steps=500, engine="dense")
    # auto agreed with the event engine bit for bit, including the
    # engine-specific final tick (the dense engine needs one extra quiet
    # tick to observe quiescence, so a differing final_tick would expose a
    # dense dispatch)
    assert auto[0].final_tick == event[0].final_tick
    assert auto[0].final_tick != dense[0].final_tick
    assert auto[0].first_spike.tolist() == dense[0].first_spike.tolist()


def test_batch_auto_falls_back_to_dense_for_pacemakers():
    net, ids = chain_net(delay=100, pacemaker=True)
    with pytest.warns(RuntimeWarning, match="pacemaker"):
        runs = simulate_batch(net, [[ids[0]], [ids[1]]], max_steps=250,
                              stop_when_quiescent=False)
    assert runs[0].first_spike[ids[1]] == 100
    assert runs[1].first_spike[ids[2]] == 100
    # the pacemaker fired every tick of the budget in both items
    assert runs[0].spike_counts[-1] == 250


def test_batch_watchdog_falls_back_to_per_item_dispatch():
    net, ids = chain_net()
    runs = simulate_batch(net, [[ids[0]], [ids[1]]], max_steps=20,
                          watchdog=Watchdog())
    assert runs[0].first_spike[ids[2]] == 2
    assert runs[1].first_spike[ids[2]] == 1


def test_batch_probe_falls_back_and_carries_voltages():
    net, ids = chain_net()
    runs = simulate_batch(net, [[ids[0]], [ids[1]]], max_steps=5,
                          probe_voltages=[ids[2]])
    for r in runs:
        assert r.voltages is not None and ids[2] in r.voltages


def test_batch_unknown_engine_rejected():
    net, ids = chain_net()
    with pytest.raises(ValidationError, match="unknown engine"):
        simulate_batch(net, [[ids[0]]], max_steps=5, engine="gpu")


def test_batch_matches_solo_simulate_per_item():
    net, ids = chain_net(delay=2)
    runs = simulate_batch(net, [[ids[0]], [ids[1]], [ids[2]]], max_steps=30)
    for b, stim in enumerate(([ids[0]], [ids[1]], [ids[2]])):
        solo = simulate(net, stim, max_steps=30, engine="dense")
        assert runs[b].first_spike.tolist() == solo.first_spike.tolist()
        assert runs[b].stop_reason == solo.stop_reason


def test_batch_per_item_stop_reasons():
    net, ids = chain_net(delay=3)
    runs = simulate_dense_batch(
        net.compile(),
        [[ids[0]], [ids[0]], None],
        max_steps=4,
        terminal=None,
        watch=None,
        stop_when_quiescent=True,
    )
    # item 0/1 hit the tick budget mid-propagation; item 2 never spikes
    assert runs[2].stop_reason == StopReason.QUIESCENT
    assert runs[0].stop_reason == StopReason.MAX_STEPS
    term_runs = simulate_dense_batch(
        net.compile(), [[ids[0]]], max_steps=30, terminal=ids[2]
    )
    assert term_runs[0].stop_reason == StopReason.TERMINAL
    assert term_runs[0].final_tick == 6


# ---------------------------------------------------------------- _per_item #


def test_per_item_normalization():
    model = SpikeDrop(0.1, seed=1)
    assert _per_item(None, 3, SpikeDrop, "faults") == [None, None, None]
    assert _per_item(model, 3, SpikeDrop, "faults") == [model] * 3
    mixed = [model, None, model]
    assert _per_item(mixed, 3, SpikeDrop, "faults") == mixed


def test_per_item_rejects_wrong_length_and_type():
    model = SpikeDrop(0.1, seed=1)
    with pytest.raises(ValidationError, match="2 entries for a batch of 3"):
        _per_item([model, None], 3, SpikeDrop, "faults")
    with pytest.raises(ValidationError, match="must be SpikeDrop"):
        _per_item([model, "nope", None], 3, SpikeDrop, "faults")


def test_batch_validates_inputs():
    net, ids = chain_net()
    with pytest.raises(ValidationError, match="max_steps"):
        simulate_dense_batch(net.compile(), [[ids[0]]], max_steps=-1)
    with pytest.raises(ValidationError, match="out of range"):
        simulate_dense_batch(net.compile(), [[99]], max_steps=5)


# -------------------------------------------------------------- build cache #


def test_structure_fingerprint_sensitivity():
    a = np.asarray([1, 2, 3], dtype=np.int64)
    assert structure_fingerprint(a) == structure_fingerprint(a.copy())
    assert structure_fingerprint(a) != structure_fingerprint(a.astype(np.int32))
    assert structure_fingerprint(a) != structure_fingerprint(a[::-1])
    assert structure_fingerprint("x", a) != structure_fingerprint("y", a)


def test_build_cache_hit_miss_and_lru_eviction():
    cache = BuildCache(maxsize=2)
    builds = []

    def make(key):
        def build():
            builds.append(key)
            return key
        return build

    assert cache.get_or_build(("a",), make("a")) == "a"
    assert cache.get_or_build(("a",), make("a")) == "a"  # hit
    assert cache.stats() == {
        "entries": 1,
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "invalidations": 0,
        "seeds": 0,
    }
    cache.get_or_build(("b",), make("b"))
    cache.get_or_build(("a",), make("a"))  # refresh "a" to MRU
    cache.get_or_build(("c",), make("c"))  # evicts LRU = "b"
    cache.get_or_build(("b",), make("b"))  # rebuild
    assert builds == ["a", "b", "c", "b"]
    assert len(cache) == 2


def test_build_cache_rejects_none_and_bad_maxsize():
    cache = BuildCache()
    with pytest.raises(ValidationError, match="None"):
        cache.get_or_build(("k",), lambda: None)
    with pytest.raises(ValidationError, match="maxsize"):
        BuildCache(maxsize=0)


def test_graph_structure_key_caches_network_builds():
    from repro.algorithms import sssp_network

    edges = [(0, 1, 2), (1, 2, 3)]
    g1 = WeightedDigraph(3, edges)
    g2 = WeightedDigraph(3, edges)
    g3 = WeightedDigraph(3, [(0, 1, 2), (1, 2, 4)])
    assert g1.structure_key() == g2.structure_key()
    assert g1.structure_key() != g3.structure_key()

    default_build_cache.clear()
    net1, ids1 = sssp_network(g1)
    net2, ids2 = sssp_network(g2)  # same structure: the exact same object
    assert net1 is net2 and ids1 is ids2
    net3, _ = sssp_network(g3)
    assert net3 is not net1
    assert sssp_network(g1, use_gadgets=True)[0] is not net1
