"""Tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.workloads import read_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.edges"
    rc = main(
        [
            "generate",
            "--kind",
            "gnp",
            "--n",
            "20",
            "--p",
            "0.25",
            "--max-length",
            "6",
            "--seed",
            "4",
            "--out",
            str(path),
        ]
    )
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_readable_graph(self, graph_file):
        g = read_edge_list(graph_file)
        assert g.n == 20
        assert g.max_length() <= 6

    @pytest.mark.parametrize("kind", ["grid", "road", "path", "complete", "powerlaw"])
    def test_all_kinds(self, tmp_path, kind):
        out = tmp_path / f"{kind}.edges"
        rc = main(["generate", "--kind", kind, "--n", "10", "--rows", "4",
                   "--cols", "4", "--out", str(out)])
        assert rc == 0
        assert read_edge_list(out).n > 0


class TestAlgorithms:
    def test_sssp_pseudo(self, graph_file, capsys):
        assert main(["sssp", str(graph_file), "--source", "0"]) == 0
        out = capsys.readouterr().out
        assert "distances:" in out and "sssp_pseudo" in out

    def test_sssp_poly(self, graph_file, capsys):
        assert main(["sssp", str(graph_file), "--algorithm", "poly"]) == 0
        assert "sssp_poly" in capsys.readouterr().out

    def test_sssp_crossbar(self, graph_file, capsys):
        assert main(["sssp", str(graph_file), "--algorithm", "crossbar"]) == 0
        assert "crossbar" in capsys.readouterr().out

    def test_sssp_with_target(self, graph_file, capsys):
        assert main(["sssp", str(graph_file), "--target", "7"]) == 0
        assert "distance to 7:" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["ttl", "poly"])
    def test_khop(self, graph_file, capsys, algo):
        assert main(["khop", str(graph_file), "--k", "3",
                     "--algorithm", algo]) == 0
        out = capsys.readouterr().out
        assert "khop" in out

    def test_approx(self, graph_file, capsys):
        assert main(["approx", str(graph_file), "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "epsilon:" in out

    def test_compare(self, graph_file, capsys):
        assert main(["compare", str(graph_file), "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "SSSP (RAM)" in out and "DISTANCE" in out and "winner" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required_args(self):
        with pytest.raises(SystemExit):
            main(["khop", "nofile"])  # --k required


class TestFaults:
    def test_prints_degradation_table(self, graph_file, capsys):
        rc = main(["faults", str(graph_file), "--rates", "0,0.1",
                   "--trials", "3", "--algorithms", "sssp"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P(success)" in out and "sssp" in out

    def test_writes_markdown_report(self, graph_file, tmp_path):
        report = tmp_path / "faults.md"
        rc = main(["faults", str(graph_file), "--rates", "0", "--trials", "2",
                   "--algorithms", "max", "--out", str(report)])
        assert rc == 0
        text = report.read_text()
        assert text.startswith("# ") and "| max |" in text

    def test_bad_algorithm_rejected(self, graph_file):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            main(["faults", str(graph_file), "--algorithms", "dijkstra"])


class TestProfile:
    def test_profile_sssp_end_to_end(self, graph_file, capsys):
        assert main(["profile", "sssp", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "profile: sssp" in out
        assert "phases:" in out and "simulate" in out
        assert "spikes" in out
        assert "reconciliation" in out and "MISMATCH" not in out
        assert "DISTANCE cost" in out
        assert "embedding-charged" in out

    def test_profile_generates_graph_when_omitted(self, capsys):
        assert main(["profile", "sssp", "--n", "30", "--p", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "graph: n=30" in out

    @pytest.mark.parametrize(
        "algo", ["sssp_poly", "khop", "khop_poly", "approx", "matvec"]
    )
    def test_profile_all_algorithms(self, capsys, algo):
        assert main(["profile", algo, "--n", "25", "--p", "0.2", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert f"profile: {algo}" in out
        assert "MISMATCH" not in out

    def test_profile_dense_engine(self, graph_file, capsys):
        assert main(["profile", "sssp", str(graph_file), "--engine", "dense"]) == 0
        assert "MISMATCH" not in capsys.readouterr().out

    def test_profile_writes_chrome_trace(self, graph_file, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        rc = main(["profile", "sssp", str(graph_file), "--trace", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert any(r["name"] == "spikes" for r in doc["traceEvents"])

    def test_trace_ignored_for_unsupported_algorithm(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        rc = main(["profile", "matvec", "--n", "20", "--trace", str(trace)])
        assert rc == 0
        assert not trace.exists()
        assert "ignoring" in capsys.readouterr().out


class TestInfo:
    def test_info_prints_stats_and_chips(self, graph_file, capsys):
        assert main(["info", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "neurons:" in out
        assert "chips required" in out
        assert "TrueNorth" in out


class TestDimacsFormat:
    def test_generate_and_solve_dimacs(self, tmp_path, capsys):
        out = tmp_path / "g.gr"
        assert main(["generate", "--kind", "gnp", "--n", "15", "--p", "0.3",
                     "--seed", "2", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.splitlines()[1].startswith("p sp 15")
        assert main(["sssp", str(out), "--source", "0"]) == 0
        assert "sssp_pseudo" in capsys.readouterr().out


class TestJsonOutput:
    def test_sssp_json(self, graph_file, capsys):
        import json

        assert main(["sssp", str(graph_file), "--source", "0", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # exactly one JSON document, no banner
        assert doc["command"] == "sssp"
        assert doc["graph"]["n"] == 20
        assert len(doc["dist"]) == 20
        assert doc["cost"]["algorithm"] == "sssp_pseudo"

    def test_sssp_json_with_target(self, graph_file, capsys):
        import json

        assert main(
            ["sssp", str(graph_file), "--source", "0", "--target", "3", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "distance_to_target" in doc

    def test_khop_json(self, graph_file, capsys):
        import json

        assert main(
            ["khop", str(graph_file), "--source", "0", "--k", "3", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["k"] == 3 and doc["command"] == "khop"

    def test_approx_json(self, graph_file, capsys):
        import json

        assert main(
            ["approx", str(graph_file), "--source", "0", "--k", "3", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["epsilon"] > 0

    def test_compare_json(self, graph_file, capsys):
        import json

        assert main(["compare", str(graph_file), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["rows"]) >= {"sssp_ram", "sssp_neuro", "khop_distance"}


class TestServe:
    def test_serve_jsonl_round_trip(self, graph_file, tmp_path, capsys):
        import json

        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(
            "\n".join(
                [
                    json.dumps({"kind": "sssp", "graph_id": "g", "source": 0}),
                    json.dumps({"kind": "khop", "graph_id": "g", "source": 1, "k": 2}),
                    json.dumps({"kind": "apsp", "graph_id": "g", "sources": [0, 1]}),
                    "# a comment line, skipped",
                    "",
                ]
            )
        )
        rc = main([
            "serve", f"g={graph_file}", "--requests", str(reqs), "--max-batch", "4"
        ])
        assert rc == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
        docs = [json.loads(ln) for ln in lines]
        assert len(docs) == 3
        assert all(d["status"] == "ok" for d in docs)
        assert docs[0]["kind"] == "sssp" and len(docs[0]["dist"]) == 20
        assert docs[2]["kind"] == "apsp" and len(docs[2]["matrix"]) == 2

    def test_serve_rejects_bad_lines_with_exit_1(self, graph_file, tmp_path, capsys):
        import json

        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(
            json.dumps({"kind": "sssp", "graph_id": "g", "source": 0})
            + "\n"
            + json.dumps({"kind": "sssp", "graph_id": "missing", "source": 0})
            + "\n"
        )
        rc = main(["serve", f"g={graph_file}", "--requests", str(reqs)])
        assert rc == 1
        docs = [json.loads(ln) for ln in capsys.readouterr().out.splitlines() if ln.strip()]
        assert docs[0]["status"] == "ok"
        assert docs[1]["status"] == "rejected" and "missing" in docs[1]["error"]


class TestLoadgen:
    def test_loadgen_writes_bench_artifact(self, graph_file, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_serving.json"
        rc = main([
            "loadgen", f"g={graph_file}",
            "--requests", "16", "--clients", "2", "--depth", "4",
            "--max-batch", "8", "--linger-ms", "5", "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "speedup" in text and "0 mismatches" in text
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.serving.bench/v1"
        assert doc["serving"]["ok"] == 16
        assert doc["serving"]["errors"] == 0
        assert doc["equality"]["mismatches"] == 0
        assert doc["naive"]["throughput_rps"] > 0

    def test_loadgen_skip_naive(self, graph_file, tmp_path):
        import json

        out = tmp_path / "bench.json"
        rc = main([
            "loadgen", f"g={graph_file}",
            "--requests", "8", "--clients", "2", "--depth", "2",
            "--skip-naive", "--no-verify", "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["naive"] is None and doc["speedup"] is None
        assert doc["equality"]["checked"] is False
