"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_discovered():
    assert len(EXAMPLES) >= 6
