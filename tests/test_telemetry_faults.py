"""Telemetry x faults: recorder totals must match realized fault counts.

The :class:`~repro.core.transient.CountingFaults` wrapper tallies what the
fault model hands to an engine; the
:class:`~repro.telemetry.trace.TraceRecorder` tallies what the engine
reports through the hook API.  The two observe the same run from opposite
sides, so their counts must agree exactly — on both engines, which must in
turn agree with each other (counter-hashed fault decisions are engine-order
independent).
"""

import numpy as np
import pytest

from repro.core import (
    Network,
    SpikeDrop,
    SpuriousSpikes,
    StuckAtFiring,
    StuckAtSilent,
    compose,
    simulate_dense,
    simulate_event_driven,
)
from repro.core.session import DenseSession
from repro.core.transient import CountingFaults, FaultRealization
from repro.telemetry import TraceRecorder


def dense_mesh(n=12, fanout=4, seed=3):
    rng = np.random.default_rng(seed)
    net = Network()
    ids = [net.add_neuron(tau=1.0) for _ in range(n)]
    for u in range(n):
        for v in rng.choice(n, size=fanout, replace=False):
            if u != int(v):
                net.add_synapse(ids[u], ids[int(v)], delay=int(rng.integers(1, 4)))
    return net, ids


FAULT_FACTORIES = {
    "drop": lambda: SpikeDrop(0.4, seed=11),
    "spurious": lambda: SpuriousSpikes(0.05, seed=7),
    "stuck_firing": lambda: StuckAtFiring([(2, 1, 8)]),
    "composite": lambda: compose(
        SpikeDrop(0.3, seed=5),
        SpuriousSpikes(0.03, seed=9),
        StuckAtSilent([(1, 0, 10)]),
    ),
}


@pytest.mark.parametrize("fault_name", sorted(FAULT_FACTORIES))
@pytest.mark.parametrize("engine", ["dense", "event"])
def test_recorder_matches_counting_faults(fault_name, engine):
    net, ids = dense_mesh()
    counting = CountingFaults(FAULT_FACTORIES[fault_name]())
    rec = TraceRecorder()
    run = simulate_dense if engine == "dense" else simulate_event_driven
    run(net, [ids[0]], max_steps=30, faults=counting, hooks=rec)
    assert rec.fault_totals() == counting.realization.as_dict()


@pytest.mark.parametrize("fault_name", sorted(FAULT_FACTORIES))
def test_fault_totals_agree_across_engines(fault_name):
    net, ids = dense_mesh()
    totals = {}
    for engine, run in (("dense", simulate_dense), ("event", simulate_event_driven)):
        rec = TraceRecorder()
        run(net, [ids[0]], max_steps=30, faults=FAULT_FACTORIES[fault_name](),
            hooks=rec)
        totals[engine] = (rec.total_spikes, rec.fault_totals())
    assert totals["dense"] == totals["event"]


def test_faults_actually_realized():
    """Guard against a vacuous pass: the composite model must do something."""
    net, ids = dense_mesh()
    counting = CountingFaults(FAULT_FACTORIES["composite"]())
    simulate_dense(net, [ids[0]], max_steps=30, faults=counting)
    r = counting.realization
    assert r.dropped_deliveries > 0
    assert r.forced_spikes > 0


def test_session_matches_batch_recorder():
    net, ids = dense_mesh()
    horizon = 30
    batch_rec = TraceRecorder()
    r = simulate_dense(net, [ids[0]], max_steps=horizon,
                       faults=FAULT_FACTORIES["composite"](), hooks=batch_rec)
    sess_rec = TraceRecorder()
    session = DenseSession(net, faults=FAULT_FACTORIES["composite"](),
                           fault_horizon=horizon, hooks=sess_rec)
    session.inject([ids[0]])
    session.step(r.final_tick + 1)
    assert sess_rec.total_spikes == batch_rec.total_spikes
    assert sess_rec.fault_totals() == batch_rec.fault_totals()


def test_counting_wrapper_is_transparent():
    """Wrapping must not change the spike train itself."""
    net, ids = dense_mesh()
    plain = simulate_dense(net, [ids[0]], max_steps=30,
                           faults=FAULT_FACTORIES["composite"]())
    wrapped = simulate_dense(net, [ids[0]], max_steps=30,
                             faults=CountingFaults(FAULT_FACTORIES["composite"]()))
    assert plain.first_spike.tolist() == wrapped.first_spike.tolist()
    assert plain.spike_counts.tolist() == wrapped.spike_counts.tolist()


def test_realization_as_dict():
    r = FaultRealization()
    assert r.as_dict() == {
        "dropped_deliveries": 0,
        "forced_spikes": 0,
        "suppressed_spikes": 0,
    }
