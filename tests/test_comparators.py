"""Exhaustive tests of the Figure-5A single-gate comparators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import CircuitBuilder, comparator_geq, comparator_gt, run_circuit
from repro.errors import CircuitError


def build(kind, width):
    b = CircuitBuilder()
    xs = b.input_bits("x", width)
    ys = b.input_bits("y", width)
    fn = comparator_geq if kind == "geq" else comparator_gt
    b.output_bits("out", [fn(b, xs, ys)])
    return b


class TestExhaustiveWidth3:
    @pytest.fixture(scope="class")
    def circuits(self):
        return {"geq": build("geq", 3), "gt": build("gt", 3)}

    def test_geq_all_pairs(self, circuits):
        for x in range(8):
            for y in range(8):
                got = run_circuit(circuits["geq"], {"x": x, "y": y})["out"]
                assert got == int(x >= y), (x, y)

    def test_gt_all_pairs(self, circuits):
        for x in range(8):
            for y in range(8):
                got = run_circuit(circuits["gt"], {"x": x, "y": y})["out"]
                assert got == int(x > y), (x, y)


class TestProperties:
    @given(
        width=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_widths(self, width, data):
        x = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        y = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        assert run_circuit(build("geq", width), {"x": x, "y": y})["out"] == int(x >= y)

    def test_single_gate_per_comparison(self):
        b = CircuitBuilder()
        xs = b.input_bits("x", 4)
        ys = b.input_bits("y", 4)
        before = b.size
        comparator_gt(b, xs, ys)
        assert b.size - before == 1  # depth-1, one neuron

    def test_geq_uses_run_line_bias(self):
        b = CircuitBuilder()
        xs = b.input_bits("x", 2)
        ys = b.input_bits("y", 2)
        comparator_geq(b, xs, ys)
        assert "__run__" in b.input_groups

    def test_width_mismatch_rejected(self):
        b = CircuitBuilder()
        xs = b.input_bits("x", 3)
        ys = b.input_bits("y", 2)
        with pytest.raises(CircuitError):
            comparator_geq(b, xs, ys)
        with pytest.raises(CircuitError):
            comparator_gt(b, xs, ys)
