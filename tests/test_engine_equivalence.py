"""Property-based equivalence of the dense and event-driven engines.

Both engines implement the same Definition-2 semantics; on any network the
event engine supports (no pacemakers) they must produce identical spike
trains.  Hypothesis drives randomized network topologies, parameters, and
stimuli via the shared strategy library in ``tests/differential.py``.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Network, simulate_dense, simulate_event_driven
from repro.core.session import DenseSession
from repro.telemetry import TraceRecorder
from tests.differential import (
    assert_same_raster_upto,
    fault_models,
    random_networks,
)


@given(random_networks())
@settings(max_examples=60, deadline=None)
def test_engines_agree_on_integer_tau_networks(case):
    net, stim = case
    # cap steps: recurrent nets with excitatory cycles may run forever
    r_dense = simulate_dense(net, stim, max_steps=60, stop_when_quiescent=True,
                             record_spikes=True)
    r_event = simulate_event_driven(net, stim, max_steps=60, record_spikes=True)
    assert_same_raster_upto(r_dense, r_event)


@given(random_networks(), st.data())
@settings(max_examples=60, deadline=None)
def test_engines_agree_under_transient_faults(case, data):
    """The tentpole invariant: both engines observe identical fault semantics."""
    net, stim = case
    faults = data.draw(fault_models(n=net.n_neurons))
    r_dense = simulate_dense(net, stim, max_steps=60, stop_when_quiescent=True,
                             record_spikes=True, faults=faults)
    r_event = simulate_event_driven(net, stim, max_steps=60, record_spikes=True,
                                    faults=faults)
    assert_same_raster_upto(r_dense, r_event)


@given(random_networks(), st.data())
@settings(max_examples=40, deadline=None)
def test_all_three_engines_report_identical_hook_totals(case, data):
    """Dense, event-driven, and session engines must emit the same spike and
    fault-event totals through the telemetry hook API."""
    net, stim = case
    max_steps = 40
    seed_model = data.draw(fault_models(n=net.n_neurons))

    dense_rec = TraceRecorder()
    r_dense = simulate_dense(net, stim, max_steps=max_steps,
                             stop_when_quiescent=True, faults=seed_model,
                             hooks=dense_rec)
    event_rec = TraceRecorder()
    simulate_event_driven(net, stim, max_steps=max_steps, faults=seed_model,
                          hooks=event_rec)
    session_rec = TraceRecorder()
    session = DenseSession(net, faults=seed_model, fault_horizon=max_steps,
                           hooks=session_rec)
    session.inject(stim)
    session.step(r_dense.final_tick + 1)

    assert dense_rec.total_spikes == r_dense.spike_counts.sum()
    for rec in (event_rec, session_rec):
        assert rec.total_spikes == dense_rec.total_spikes
        assert rec.fault_totals() == dense_rec.fault_totals()
    assert dense_rec.total_deliveries == event_rec.total_deliveries
    assert dense_rec.total_deliveries == session_rec.total_deliveries


@given(
    tau=st.floats(min_value=0.05, max_value=0.95),
    weights=st.lists(
        st.floats(min_value=0.1, max_value=0.9), min_size=2, max_size=6
    ),
    gaps=st.lists(st.integers(min_value=1, max_value=5), min_size=2, max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_engines_agree_on_fractional_decay(tau, weights, gaps):
    """A single integrator receiving a drip of subthreshold inputs."""
    k = min(len(weights), len(gaps))
    net = Network()
    srcs = [net.add_neuron(tau=1.0) for _ in range(k)]
    target = net.add_neuron(v_threshold=1.2, tau=tau)
    t, stim = 0, {}
    for i in range(k):
        t += gaps[i]
        stim[t] = stim.get(t, [])
        stim[t].append(srcs[i])
        net.add_synapse(srcs[i], target, weight=weights[i], delay=1)
    r_dense = simulate_dense(net, stim, max_steps=80)
    r_event = simulate_event_driven(net, stim, max_steps=80)
    assert r_dense.first_spike[target] == r_event.first_spike[target]
    assert r_dense.spike_counts[target] == r_event.spike_counts[target]
