"""Tests of the Section 3 pseudopolynomial spiking SSSP."""

import numpy as np
import pytest

from repro.algorithms import spiking_sssp_pseudo
from repro.core.result import StopReason
from repro.errors import ValidationError
from repro.workloads import WeightedDigraph, gnp_graph, path_graph, star_graph
from tests.conftest import SMALL_GRAPH_DIST, ref_sssp


class TestCorrectness:
    def test_small_graph_known_distances(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0)
        assert np.array_equal(r.dist, SMALL_GRAPH_DIST)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, seed):
        g = gnp_graph(15, 0.25, max_length=6, seed=seed,
                      ensure_source_reaches=(seed % 2 == 0))
        r = spiking_sssp_pseudo(g, 0)
        assert np.array_equal(r.dist, ref_sssp(g, 0))

    @pytest.mark.parametrize("engine", ["event", "dense"])
    def test_engines_agree(self, small_graph, engine):
        r = spiking_sssp_pseudo(small_graph, 0, engine=engine)
        assert np.array_equal(r.dist, SMALL_GRAPH_DIST)

    def test_gadget_variant_matches(self, random_graphs):
        for g in random_graphs:
            plain = spiking_sssp_pseudo(g, 0)
            gadget = spiking_sssp_pseudo(g, 0, use_gadgets=True, engine="dense")
            assert np.array_equal(plain.dist, gadget.dist)

    def test_gadget_scaling_restores_distances(self):
        # min length 1 forces the x3 internal scaling; results must be exact
        g = path_graph(5, max_length=1, seed=0)
        r = spiking_sssp_pseudo(g, 0, use_gadgets=True, engine="dense")
        assert r.dist.tolist() == [0, 1, 2, 3, 4]

    def test_self_loops_ignored(self):
        g = WeightedDigraph(2, [(0, 0, 5), (0, 1, 3)])
        r = spiking_sssp_pseudo(g, 0)
        assert r.dist.tolist() == [0, 3]

    def test_unreachable_marked(self):
        g = WeightedDigraph(3, [(0, 1, 2)])
        r = spiking_sssp_pseudo(g, 0)
        assert r.dist.tolist() == [0, 2, -1]
        assert r.distance_to(2) is None
        assert r.reached.tolist() == [True, True, False]

    def test_source_distance_zero(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 3)
        assert r.dist[3] == 0

    def test_parallel_edges_shortest_wins(self):
        g = WeightedDigraph(2, [(0, 1, 9), (0, 1, 2)])
        r = spiking_sssp_pseudo(g, 0)
        assert r.dist[1] == 2


class TestTargetMode:
    def test_terminates_at_target(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0, target=3)
        assert r.dist[3] == 6
        assert r.sim.stop_reason is StopReason.TERMINAL
        # node 4 is farther than the target: never reached before stopping
        assert r.dist[4] == -1

    def test_unreachable_target_runs_out(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0, target=5)
        assert r.dist[5] == -1

    def test_target_validation(self, small_graph):
        with pytest.raises(ValidationError):
            spiking_sssp_pseudo(small_graph, 0, target=77)

    def test_source_validation(self, small_graph):
        with pytest.raises(ValidationError):
            spiking_sssp_pseudo(small_graph, -1)


class TestCostModel:
    def test_simulated_ticks_equal_L(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0, target=4)
        assert r.cost.simulated_ticks == 8  # L = dist(4)

    def test_simulated_ticks_max_distance_without_target(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0)
        assert r.cost.simulated_ticks == 8

    def test_loading_is_m(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0)
        assert r.cost.loading_ticks == small_graph.m

    def test_neuron_count_n(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0)
        assert r.cost.neuron_count == small_graph.n

    def test_gadget_neuron_count_2n(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0, use_gadgets=True, engine="dense")
        assert r.cost.neuron_count == 2 * small_graph.n

    def test_total_time_theorem_41(self, small_graph):
        """Theorem 4.1 without data movement: T = L + m."""
        r = spiking_sssp_pseudo(small_graph, 0)
        assert r.cost.total_time == 8 + small_graph.m

    def test_embedding_charge(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0)
        charged = r.cost.with_embedding(small_graph.n)
        assert charged.total_time == small_graph.n * 8 + small_graph.m

    def test_spike_count_at_most_n_for_one_shot(self):
        g = star_graph(10, max_length=3, seed=0)
        r = spiking_sssp_pseudo(g, 0)
        assert r.cost.spike_count == 10  # every vertex fires exactly once

    def test_scale_invariance(self):
        g = gnp_graph(10, 0.3, max_length=5, seed=9, ensure_source_reaches=True)
        r1 = spiking_sssp_pseudo(g, 0)
        r7 = spiking_sssp_pseudo(g.scaled(7), 0)
        assert np.array_equal(r7.dist, r1.dist * 7)
