"""Tests of the engine auto-dispatcher (repro.core.run)."""

import pytest

from repro.core import Network, simulate, simulate_batch
from repro.core.run import ENGINES, _EVENT_DELAY_CUTOFF
from repro.core.sparse import SPARSE_AUTO_MIN_NEURONS
from repro.errors import ValidationError, classify_exception


def make_net(delay=1, pacemaker=False):
    net = Network()
    a = net.add_neuron(
        v_reset=2.0 if pacemaker else 0.0,
        v_threshold=0.5,
        tau=1.0,
    )
    b = net.add_neuron()
    net.add_synapse(a, b, delay=delay)
    return net, a, b


class TestAutoDispatch:
    def test_short_delays_pick_dense(self):
        net, a, b = make_net(delay=2)
        r = simulate(net, [a], max_steps=10)
        assert r.first_spike[b] == 2  # semantics regardless of engine

    def test_long_delays_pick_event(self):
        net, a, b = make_net(delay=_EVENT_DELAY_CUTOFF + 1)
        # event engine rejects probes; auto must not have chosen dense here,
        # so requesting probes forces dense explicitly instead
        r = simulate(net, [a], max_steps=1000)
        assert r.first_spike[b] == _EVENT_DELAY_CUTOFF + 1

    def test_pacemaker_forces_dense(self):
        net, a, b = make_net(pacemaker=True)
        r = simulate(net, None, max_steps=5, stop_when_quiescent=False)
        assert r.spike_counts[a] == 5  # only the dense engine supports this

    def test_pacemaker_with_long_delays_warns_and_falls_back_to_dense(self):
        """The heuristic wants the event engine for long delays, but pacemakers
        require dense: auto now warns and degrades instead of raising."""
        net, a, b = make_net(delay=_EVENT_DELAY_CUTOFF + 5, pacemaker=True)
        with pytest.warns(RuntimeWarning, match="pacemaker"):
            r = simulate(net, None, max_steps=_EVENT_DELAY_CUTOFF + 10,
                         stop_when_quiescent=False)
        assert r.spike_counts[a] == _EVENT_DELAY_CUTOFF + 10
        assert r.first_spike[b] == _EVENT_DELAY_CUTOFF + 6

    def test_short_delay_pacemaker_does_not_warn(self):
        import warnings

        net, a, _ = make_net(pacemaker=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            r = simulate(net, None, max_steps=5, stop_when_quiescent=False)
        assert r.spike_counts[a] == 5

    def test_probes_force_dense_even_with_long_delays(self):
        net, a, b = make_net(delay=_EVENT_DELAY_CUTOFF + 10)
        r = simulate(net, [a], max_steps=200, probe_voltages=[b])
        assert r.voltages is not None and b in r.voltages

    def test_explicit_event_with_probes_rejected(self):
        net, a, b = make_net()
        with pytest.raises(ValidationError):
            simulate(net, [a], max_steps=5, engine="event", probe_voltages=[b])

    def test_unknown_engine_rejected(self):
        net, a, _ = make_net()
        with pytest.raises(ValidationError):
            simulate(net, [a], max_steps=5, engine="warp")

    def test_unknown_engine_error_is_structured(self):
        """The dispatch error carries the stable INVALID code (permanent,
        not retryable) and names every accepted engine."""
        net, a, _ = make_net()
        with pytest.raises(ValidationError) as exc:
            simulate(net, [a], max_steps=5, engine="warp")
        code, retryable = classify_exception(exc.value)
        assert code == "INVALID"
        assert not retryable
        msg = str(exc.value)
        assert "'warp'" in msg
        for engine in ENGINES:
            assert engine in msg

    def test_unknown_engine_rejected_in_batch(self):
        net, a, _ = make_net()
        with pytest.raises(ValidationError) as exc:
            simulate_batch(net, [[a]], max_steps=5, engine="warp")
        assert classify_exception(exc.value)[0] == "INVALID"

    @pytest.mark.parametrize("engine", ["dense", "event", "sparse"])
    def test_explicit_engines_work(self, engine):
        net, a, b = make_net(delay=3)
        r = simulate(net, [a], max_steps=10, engine=engine)
        assert r.first_spike[b] == 3

    def test_explicit_sparse_with_probes_rejected(self):
        net, a, b = make_net()
        with pytest.raises(ValidationError):
            simulate(net, [a], max_steps=5, engine="sparse", probe_voltages=[b])


def big_sparse_net(delay: int, pacemaker: bool = False):
    """A network past both sparse-auto thresholds: n >= the neuron floor
    and density far below the cutoff (a handful of synapses over n^2)."""
    net = Network()
    if pacemaker:
        net.add_neuron(v_reset=2.0, v_threshold=0.5, tau=1.0)
    for _ in range(SPARSE_AUTO_MIN_NEURONS):
        net.add_neuron()
    net.add_synapse(0, 1, delay=delay)
    net.add_synapse(1, 2, delay=2)
    return net


class TestSparseAutoDispatch:
    def test_auto_picks_sparse_for_large_low_density_long_delay_net(self):
        compiled = big_sparse_net(delay=_EVENT_DELAY_CUTOFF + 1).compile()
        r = simulate(compiled, [0], max_steps=_EVENT_DELAY_CUTOFF + 10)
        assert r.first_spike[1] == _EVENT_DELAY_CUTOFF + 1
        assert r.first_spike[2] == _EVENT_DELAY_CUTOFF + 3
        # the sparse core memoizes its CSR artifact on the compiled network,
        # so its presence is direct evidence the sparse path ran
        assert getattr(compiled, "_sparse_artifact", None) is not None

    def test_auto_keeps_event_for_small_long_delay_net(self):
        net, a, b = make_net(delay=_EVENT_DELAY_CUTOFF + 1)
        compiled = net.compile()
        r = simulate(compiled, [a], max_steps=1000)
        assert r.first_spike[b] == _EVENT_DELAY_CUTOFF + 1
        assert getattr(compiled, "_sparse_artifact", None) is None

    def test_auto_pacemaker_still_falls_back_to_dense(self):
        compiled = big_sparse_net(
            delay=_EVENT_DELAY_CUTOFF + 1, pacemaker=True
        ).compile()
        with pytest.warns(RuntimeWarning, match="pacemaker"):
            simulate(compiled, None, max_steps=3, stop_when_quiescent=False)
        assert getattr(compiled, "_sparse_artifact", None) is None

    def test_batch_auto_picks_sparse_per_item(self):
        compiled = big_sparse_net(delay=_EVENT_DELAY_CUTOFF + 1).compile()
        rs = simulate_batch(
            compiled, [[0], [1]], max_steps=_EVENT_DELAY_CUTOFF + 10
        )
        assert rs[0].first_spike[1] == _EVENT_DELAY_CUTOFF + 1
        assert rs[1].first_spike[2] == 2
        assert getattr(compiled, "_sparse_artifact", None) is not None
