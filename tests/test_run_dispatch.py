"""Tests of the engine auto-dispatcher (repro.core.run)."""

import pytest

from repro.core import Network, simulate
from repro.core.run import _EVENT_DELAY_CUTOFF
from repro.errors import ValidationError


def make_net(delay=1, pacemaker=False):
    net = Network()
    a = net.add_neuron(
        v_reset=2.0 if pacemaker else 0.0,
        v_threshold=0.5,
        tau=1.0,
    )
    b = net.add_neuron()
    net.add_synapse(a, b, delay=delay)
    return net, a, b


class TestAutoDispatch:
    def test_short_delays_pick_dense(self):
        net, a, b = make_net(delay=2)
        r = simulate(net, [a], max_steps=10)
        assert r.first_spike[b] == 2  # semantics regardless of engine

    def test_long_delays_pick_event(self):
        net, a, b = make_net(delay=_EVENT_DELAY_CUTOFF + 1)
        # event engine rejects probes; auto must not have chosen dense here,
        # so requesting probes forces dense explicitly instead
        r = simulate(net, [a], max_steps=1000)
        assert r.first_spike[b] == _EVENT_DELAY_CUTOFF + 1

    def test_pacemaker_forces_dense(self):
        net, a, b = make_net(pacemaker=True)
        r = simulate(net, None, max_steps=5, stop_when_quiescent=False)
        assert r.spike_counts[a] == 5  # only the dense engine supports this

    def test_pacemaker_with_long_delays_warns_and_falls_back_to_dense(self):
        """The heuristic wants the event engine for long delays, but pacemakers
        require dense: auto now warns and degrades instead of raising."""
        net, a, b = make_net(delay=_EVENT_DELAY_CUTOFF + 5, pacemaker=True)
        with pytest.warns(RuntimeWarning, match="pacemaker"):
            r = simulate(net, None, max_steps=_EVENT_DELAY_CUTOFF + 10,
                         stop_when_quiescent=False)
        assert r.spike_counts[a] == _EVENT_DELAY_CUTOFF + 10
        assert r.first_spike[b] == _EVENT_DELAY_CUTOFF + 6

    def test_short_delay_pacemaker_does_not_warn(self):
        import warnings

        net, a, _ = make_net(pacemaker=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            r = simulate(net, None, max_steps=5, stop_when_quiescent=False)
        assert r.spike_counts[a] == 5

    def test_probes_force_dense_even_with_long_delays(self):
        net, a, b = make_net(delay=_EVENT_DELAY_CUTOFF + 10)
        r = simulate(net, [a], max_steps=200, probe_voltages=[b])
        assert r.voltages is not None and b in r.voltages

    def test_explicit_event_with_probes_rejected(self):
        net, a, b = make_net()
        with pytest.raises(ValidationError):
            simulate(net, [a], max_steps=5, engine="event", probe_voltages=[b])

    def test_unknown_engine_rejected(self):
        net, a, _ = make_net()
        with pytest.raises(ValidationError):
            simulate(net, [a], max_steps=5, engine="warp")

    @pytest.mark.parametrize("engine", ["dense", "event"])
    def test_explicit_engines_work(self, engine):
        net, a, b = make_net(delay=3)
        r = simulate(net, [a], max_steps=10, engine=engine)
        assert r.first_spike[b] == 3
