"""Tests of graph sharding: partition invariants and fixpoint exactness.

The shard router must be invisible in the answers: a sharded sssp/khop is
checked for *exact* distance agreement with the classical references on
every graph tried, including a 10⁴-vertex instance — approximation is not
on the menu, the fixpoint either converges to the true distances or the
tier is broken.
"""

import numpy as np
import pytest

from tests.conftest import ref_sssp
from repro.baselines.dijkstra import dijkstra
from repro.errors import ValidationError
from repro.service import QueryRequest, QueryServer
from repro.service.net import (
    partition_graph,
    plan_sharded_request,
    sharded_khop,
    sharded_sssp,
)
from repro.workloads import gnp_graph, grid_graph


def ref_hops(graph, source, k):
    """BFS hop distances capped at ``k`` (the khop reach metric)."""
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    for hop in range(1, k + 1):
        nxt = []
        for u in frontier:
            heads, _ = graph.out_edges(u)
            for v in heads.tolist():
                if dist[v] < 0:
                    dist[v] = hop
                    nxt.append(v)
        frontier = nxt
    return dist


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(60, 0.08, max_length=9, seed=3, ensure_source_reaches=True)


@pytest.fixture(scope="module")
def sharded(graph):
    return partition_graph(graph, 4)


class TestPartition:
    def test_vertices_covered_once(self, graph, sharded):
        seen = np.zeros(graph.n, dtype=bool)
        for shard in sharded.shards:
            span = np.arange(shard.base, shard.base + shard.n)
            assert not seen[span].any()
            seen[span] = True
        assert seen.all()

    def test_edges_partitioned_by_head(self, graph, sharded):
        local = sum(s.graph.m for s in sharded.shards)
        assert local + sharded.cross_edges == graph.m

    def test_cross_edges_are_local_src_global_dst(self, sharded):
        for shard in sharded.shards:
            if shard.cross_src.size == 0:
                continue
            assert (shard.cross_src >= 0).all()
            assert (shard.cross_src < shard.n).all()
            outside = (shard.cross_dst < shard.base) | (
                shard.cross_dst >= shard.base + shard.n
            )
            assert outside.all()

    def test_more_shards_than_vertices_rejected(self, graph):
        with pytest.raises(ValidationError):
            partition_graph(graph, graph.n + 1)
        with pytest.raises(ValidationError):
            partition_graph(graph, 0)

    def test_single_shard_degenerates_to_whole_graph(self, graph):
        sg = partition_graph(graph, 1)
        assert sg.k == 1
        assert sg.cross_edges == 0
        assert sg.shards[0].graph.m == graph.m


class TestFixpointExactness:
    def test_sssp_matches_dijkstra(self, graph, sharded):
        for source in (0, 7, graph.n - 1):
            res = sharded_sssp(sharded, source)
            expect, _ = dijkstra(graph, source)
            np.testing.assert_array_equal(res.dist, expect)
            assert res.cost.extras["shards"] == 4

    def test_sssp_matches_networkx(self, graph, sharded):
        res = sharded_sssp(sharded, 0)
        np.testing.assert_array_equal(res.dist, ref_sssp(graph, 0))

    def test_khop_matches_bfs_hops(self, graph, sharded):
        for k in (0, 1, 3, 6):
            res = sharded_khop(sharded, 0, k)
            np.testing.assert_array_equal(res.dist, ref_hops(graph, 0, k))

    def test_grid_graph_many_shard_counts(self):
        g = grid_graph(8, 8, max_length=5, seed=1)
        expect, _ = dijkstra(g, 0)
        for k in (1, 2, 3, 5):
            res = sharded_sssp(partition_graph(g, k), 0)
            np.testing.assert_array_equal(res.dist, expect)

    def test_large_graph_exact(self):
        """The acceptance-criterion instance: n = 10⁴, exact agreement."""
        g = gnp_graph(10_000, 0.0004, max_length=9, seed=13)
        sg = partition_graph(g, 4)
        res = sharded_sssp(sg, 0)
        expect, _ = dijkstra(g, 0)
        np.testing.assert_array_equal(res.dist, expect)

    def test_cost_report_merges_shard_telemetry(self, sharded):
        res = sharded_sssp(sharded, 0)
        assert res.cost.algorithm == "sharded_sssp"
        assert res.cost.extras["cross_edges"] == sharded.cross_edges
        assert res.cost.extras["local_runs"] >= sharded.k
        assert res.rounds >= 1


class TestShardedPlans:
    def test_bad_source_rejected(self, sharded):
        req = QueryRequest(kind="sssp", graph_id="g", source=sharded.n + 5)
        with pytest.raises(ValidationError):
            plan_sharded_request(req, sharded)

    def test_runner_plans_never_coalesce(self, sharded):
        req = QueryRequest(kind="sssp", graph_id="g", source=0)
        a = plan_sharded_request(req, sharded)
        b = plan_sharded_request(req, sharded)
        assert a.runner is not None and b.runner is not None
        assert a.batch_key != b.batch_key

    def test_served_sharded_matches_solo(self, graph):
        server = QueryServer(workers=2, max_batch=4, linger_s=0.002)
        server.register_sharded_graph("g", graph, 4)
        expect, _ = dijkstra(graph, 0)
        with server:
            res = server.submit(
                QueryRequest(kind="sssp", graph_id="g", source=0)
            ).result(timeout=60)
            assert res.ok
            np.testing.assert_array_equal(res.dist, expect)
            stats = server.stats()
        assert stats["sharded"]["g"]["shards"] == 4

    def test_two_sharded_graphs_share_one_pool_without_collision(self, graph):
        """Regression: resident shard networks are structure-keyed, so two
        sharded graphs served through one process pool must never reuse
        each other's worker-resident networks."""
        from repro.service.net import ProcessWorkerPool

        other = grid_graph(9, 9, max_length=5, seed=2)
        with ProcessWorkerPool(workers=2) as pool:
            server = QueryServer(
                workers=2, max_batch=4, linger_s=0.002, process_pool=pool
            )
            server.register_sharded_graph("a", graph, 4)
            server.register_sharded_graph("b", other, 4)
            with server:
                for gid, g in (("a", graph), ("b", other)):
                    res = server.submit(
                        QueryRequest(kind="sssp", graph_id=gid, source=0)
                    ).result(timeout=120)
                    assert res.ok, res.error
                    expect, _ = dijkstra(g, 0)
                    np.testing.assert_array_equal(res.dist, expect)

    def test_ineligible_shapes_fall_back_to_whole_graph(self, graph):
        """Targeted sssp can't shard; it must still be served (resident)."""
        server = QueryServer(workers=2, max_batch=4, linger_s=0.002)
        server.register_sharded_graph("g", graph, 4)
        expect, _ = dijkstra(graph, 0)
        with server:
            res = server.submit(
                QueryRequest(kind="sssp", graph_id="g", source=0, target=5)
            ).result(timeout=60)
            assert res.ok
            assert res.dist[5] == expect[5]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
