"""Tests of path reconstruction (Sections 3 / 4.3)."""

import numpy as np
import pytest

from repro.algorithms import (
    reconstruct_khop_path,
    reconstruct_path,
    spiking_khop_pseudo,
    spiking_sssp_pseudo,
)
from repro.algorithms.paths import neuron_overhead_for_paths
from repro.errors import ValidationError
from repro.workloads import WeightedDigraph, gnp_graph
from tests.conftest import ref_khop


def path_length(graph, path):
    total = 0
    by_pair = {}
    for u, v, w in graph.edges():
        key = (u, v)
        by_pair[key] = min(by_pair.get(key, 10**18), w)
    for a, b in zip(path, path[1:]):
        assert (a, b) in by_pair, f"({a},{b}) not an edge"
        total += by_pair[(a, b)]
    return total


class TestSsspPaths:
    @pytest.mark.parametrize("seed", range(5))
    def test_reconstructed_path_is_shortest(self, seed):
        g = gnp_graph(14, 0.3, max_length=6, seed=seed, ensure_source_reaches=True)
        r = spiking_sssp_pseudo(g, 0)
        for target in range(1, g.n):
            path = reconstruct_path(g, r.dist, 0, target)
            assert path is not None
            assert path[0] == 0 and path[-1] == target
            assert path_length(g, path) == r.dist[target]

    def test_unreachable_returns_none(self):
        g = WeightedDigraph(3, [(0, 1, 2)])
        r = spiking_sssp_pseudo(g, 0)
        assert reconstruct_path(g, r.dist, 0, 2) is None

    def test_trivial_source_path(self, small_graph):
        r = spiking_sssp_pseudo(small_graph, 0)
        assert reconstruct_path(small_graph, r.dist, 0, 0) == [0]

    def test_inconsistent_distances_rejected(self, small_graph):
        bogus = np.asarray([0, 1, 1, 1, 1, 1], dtype=np.int64)
        with pytest.raises(ValidationError):
            reconstruct_path(small_graph, bogus, 0, 4)

    def test_wrong_shape_rejected(self, small_graph):
        with pytest.raises(ValidationError):
            reconstruct_path(small_graph, np.zeros(3, dtype=np.int64), 0, 1)


class TestKhopPaths:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_path_respects_hop_budget_and_length(self, seed, k):
        g = gnp_graph(12, 0.3, max_length=5, seed=seed, ensure_source_reaches=True)
        r = spiking_khop_pseudo(g, 0, k)
        for target in range(1, g.n):
            path = reconstruct_khop_path(g, 0, target, k, r.dist)
            if r.dist[target] < 0:
                assert path is None
                continue
            assert path[0] == 0 and path[-1] == target
            assert len(path) - 1 <= k
            assert path_length(g, path) == r.dist[target]

    def test_hop_budget_forces_direct_edge(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        r = spiking_khop_pseudo(g, 0, 1)
        path = reconstruct_khop_path(g, 0, 2, 1, r.dist)
        assert path == [0, 2]

    def test_inconsistent_dist_rejected(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1)])
        bogus = np.asarray([0, 1, 7], dtype=np.int64)
        with pytest.raises(ValidationError):
            reconstruct_khop_path(g, 0, 2, 2, bogus)


class TestOverheadAccounting:
    def test_sssp_overhead_n_log_n(self):
        assert neuron_overhead_for_paths(16, 100) == 16 * 4

    def test_khop_overhead_k_factor(self):
        assert neuron_overhead_for_paths(16, 100, k=5) == 16 * 4 * 5

    def test_minimum_one_bit(self):
        assert neuron_overhead_for_paths(1, 0) == 1
