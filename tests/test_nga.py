"""Tests of the NGA model (Definition 4) and semiring matrix powers."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.nga import (
    BOOLEAN,
    MAX_PLUS,
    MIN_PLUS,
    PLUS_TIMES,
    NeuromorphicGraphAlgorithm,
    matrix_power_nga,
    semiring_matvec,
)
from repro.workloads import WeightedDigraph, gnp_graph, layered_dag
from tests.conftest import ref_khop


class TestExecutor:
    def test_identity_edge_passes_messages(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1)])
        nga = NeuromorphicGraphAlgorithm(
            g, lambda u, v, w, m: m, lambda v, msgs: sum(msgs)
        )
        res = nga.run({0: 5}, rounds=2)
        assert res.history[1] == {1: 5}
        assert res.history[2] == {2: 5}

    def test_silent_nodes_send_nothing(self):
        g = WeightedDigraph(3, [(0, 1, 1), (2, 1, 1)])
        nga = NeuromorphicGraphAlgorithm(
            g, lambda u, v, w, m: m, lambda v, msgs: sum(msgs)
        )
        res = nga.run({0: 1}, rounds=1)
        # node 2 held no message, so node 1 hears only from node 0
        assert res.history[1] == {1: 1}

    def test_edge_fn_none_drops_message(self):
        g = WeightedDigraph(2, [(0, 1, 1)])
        nga = NeuromorphicGraphAlgorithm(
            g, lambda u, v, w, m: None, lambda v, msgs: sum(msgs)
        )
        res = nga.run({0: 1}, rounds=1)
        assert res.history[1] == {}

    def test_stop_when(self):
        g = WeightedDigraph(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        nga = NeuromorphicGraphAlgorithm(
            g, lambda u, v, w, m: m, lambda v, msgs: msgs[0]
        )
        res = nga.run({0: 1}, rounds=10, stop_when=lambda msgs, r: 2 in msgs)
        assert res.rounds == 2

    def test_terminates_when_no_messages(self):
        g = WeightedDigraph(2, [(0, 1, 1)])
        nga = NeuromorphicGraphAlgorithm(
            g, lambda u, v, w, m: m, lambda v, msgs: msgs[0]
        )
        res = nga.run({0: 1}, rounds=100)
        assert res.rounds == 2  # round 2 delivers nothing, then stops

    def test_timing_accounting(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1)])
        nga = NeuromorphicGraphAlgorithm(
            g, lambda u, v, w, m: m, lambda v, msgs: msgs[0], t_edge=3, t_node=4
        )
        res = nga.run({0: 1}, rounds=2)
        assert res.cost.simulated_ticks == res.rounds * 7
        assert res.cost.round_length == 7

    def test_invalid_rounds(self):
        g = WeightedDigraph(1, [])
        nga = NeuromorphicGraphAlgorithm(g, lambda *a: None, lambda *a: None)
        with pytest.raises(ValidationError):
            nga.run({0: 1}, rounds=-1)

    def test_invalid_initial_node(self):
        g = WeightedDigraph(2, [(0, 1, 1)])
        nga = NeuromorphicGraphAlgorithm(
            g, lambda u, v, w, m: m, lambda v, msgs: msgs[0]
        )
        with pytest.raises(ValidationError):
            nga.run({5: 1}, rounds=1)

    def test_invalid_depths(self):
        g = WeightedDigraph(1, [])
        with pytest.raises(ValidationError):
            NeuromorphicGraphAlgorithm(g, lambda *a: None, lambda *a: None, t_edge=0)


class TestSemiringMatvec:
    def test_plus_times_matches_numpy(self):
        g = gnp_graph(8, 0.4, max_length=5, seed=3)
        A = np.zeros((8, 8))
        for u, v, w in g.edges():
            A[v, u] += w  # A[v][u]: message flows u -> v
        x = np.arange(8, dtype=float)
        got = semiring_matvec(g, PLUS_TIMES, x.astype(object))
        want = A @ x
        assert np.allclose(got.astype(float), want)

    def test_boolean_reachability(self):
        g = WeightedDigraph(3, [(0, 1, 1), (1, 2, 1)])
        x = np.asarray([True, False, False], dtype=object)
        got = semiring_matvec(g, BOOLEAN, x, edge_value="unit")
        assert got.tolist() == [False, True, False]

    def test_min_plus_single_step(self):
        g = WeightedDigraph(3, [(0, 1, 4), (0, 1, 2), (1, 2, 1)])
        x = np.asarray([0, math.inf, math.inf], dtype=object)
        got = semiring_matvec(g, MIN_PLUS, x)
        assert got.tolist() == [math.inf, 2, math.inf]

    def test_vector_shape_checked(self):
        g = WeightedDigraph(2, [(0, 1, 1)])
        with pytest.raises(ValidationError):
            semiring_matvec(g, MIN_PLUS, np.zeros(5, dtype=object))


class TestMatrixPowerNGA:
    def test_min_plus_power_equals_khop_exact_hops(self):
        """r rounds of min-plus A^r m0 == min over exactly-r-edge paths."""
        g = gnp_graph(10, 0.3, max_length=4, seed=6, ensure_source_reaches=True)
        res = matrix_power_nga(g, MIN_PLUS, {0: 0}, rounds=3)
        # prefix-min across history == <=k-hop distances
        best = {0: 0}
        for hist in res.history:
            for v, d in hist.items():
                if d < best.get(v, math.inf):
                    best[v] = d
        expect = ref_khop(g, 0, 3)
        for v in range(g.n):
            if expect[v] >= 0:
                assert best.get(v) == expect[v]
            else:
                assert v not in best or v == 0

    def test_max_plus_critical_path_on_dag(self):
        g = layered_dag(3, 2, max_length=5, seed=1, density=1.0)
        res = matrix_power_nga(g, MAX_PLUS, {0: 0}, rounds=4)
        # the final layer's message is the longest path length
        import networkx as nx

        nxg = g.to_networkx()
        want = nx.dag_longest_path_length(nxg, weight="weight")
        got = max(max(h.values()) for h in res.history if h)
        assert got == want

    def test_unit_edge_value_counts_walks(self):
        g = WeightedDigraph(3, [(0, 1, 9), (0, 2, 9), (1, 2, 9)])
        res = matrix_power_nga(g, PLUS_TIMES, {0: 1}, rounds=2, edge_value="unit")
        # walks of length exactly 2 from 0: 0->1->2
        assert res.history[2] == {2: 1}

    def test_bad_edge_value(self):
        g = WeightedDigraph(2, [(0, 1, 1)])
        with pytest.raises(ValidationError):
            matrix_power_nga(g, MIN_PLUS, {0: 0}, rounds=1, edge_value="bogus")
