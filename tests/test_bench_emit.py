"""Tests of the headless benchmark emitter (``benchmarks/emit.py``)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks import emit  # noqa: E402


def test_run_suite_quick_single_bench():
    doc = emit.run_suite(True, names=["sssp_event"])
    assert doc["schema"] == "repro.telemetry.bench/v1"
    assert doc["metadata"]["quick"] is True
    (rec,) = doc["benches"]
    assert rec["name"] == "sssp_event"
    assert rec["wall_s"] > 0
    assert rec["peak_mem_bytes"] > 0
    assert rec["model"]["spikes"] > 0
    assert rec["counters"]["spikes.total"] == rec["model"]["spikes"]


def test_main_writes_valid_json(tmp_path, capsys):
    out = tmp_path / "BENCH_telemetry.json"
    rc = emit.main(["--quick", "--bench", "circuit_max", "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.telemetry.bench/v1"
    assert [r["name"] for r in doc["benches"]] == ["circuit_max"]
    assert json.dumps(doc)  # round-trippable


def test_unknown_bench_rejected():
    with pytest.raises(SystemExit):
        emit.main(["--bench", "nope"])


def test_every_registered_bench_is_callable():
    names = [n for n, _ in emit.BENCHES]
    assert len(names) == len(set(names))
    assert "sssp_dense" in names and "matvec_nga" in names
    assert "sssp_sparse_large" in names
