"""Analysis-toolchain wiring: ruff/mypy configuration and (when installed) runs.

The container running the tier-1 suite does not necessarily ship ruff or
mypy; the configuration contract is asserted unconditionally, the actual
tool runs only where the tools exist (CI installs them in the lint job).
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
PYPROJECT = (REPO / "pyproject.toml").read_text(encoding="utf-8")


def test_pyproject_wires_ruff_and_mypy():
    assert "[tool.ruff.lint]" in PYPROJECT
    assert "[tool.mypy]" in PYPROJECT
    # strict overrides target exactly the static-analysis subsystem
    assert '[[tool.mypy.overrides]]' in PYPROJECT
    assert 'module = "repro.staticcheck.*"' in PYPROJECT
    assert "disallow_untyped_defs = true" in PYPROJECT


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean_on_staticcheck():
    proc = subprocess.run(
        ["ruff", "check", "src/repro/staticcheck"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def _mypy_available() -> bool:
    if shutil.which("mypy") is not None:
        return True
    try:
        import mypy  # noqa: F401

        return True
    except ImportError:
        return False


@pytest.mark.skipif(not _mypy_available(), reason="mypy not installed")
def test_mypy_clean_on_staticcheck():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro/staticcheck"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
