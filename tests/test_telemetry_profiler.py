"""Tests of the profiler and its cost-report reconciliation."""

import pytest

from repro.algorithms import spiking_sssp_pseudo
from repro.telemetry import Profiler
from repro.workloads import gnp_graph


@pytest.fixture(scope="module")
def graph():
    return gnp_graph(30, 0.15, max_length=6, seed=2, ensure_source_reaches=True)


class TestProfiler:
    def test_profiled_sssp_reports_phases_and_reconciles(self, graph):
        profiler = Profiler("sssp")
        res = profiler.run(spiking_sssp_pseudo, graph, 0)
        report = profiler.report(cost=res.cost)
        assert report.wall_seconds > 0
        assert {p.name for p in report.phases} >= {"build", "simulate", "decode"}
        assert report.counters["runs.sssp_pseudo"] == 1
        assert report.reconciliation["spikes.total"][2] is True
        assert report.reconciliation["ticks.simulated"][2] is True
        assert report.consistent

    def test_wall_time_accumulates_across_runs(self, graph):
        profiler = Profiler("sssp")
        profiler.run(spiking_sssp_pseudo, graph, 0)
        first = profiler.wall_seconds
        profiler.run(spiking_sssp_pseudo, graph, 0)
        assert profiler.wall_seconds > first
        assert profiler.registry.counters["runs.sssp_pseudo"] == 2

    def test_mismatch_is_flagged(self, graph):
        profiler = Profiler("sssp")
        res = profiler.run(spiking_sssp_pseudo, graph, 0)
        profiler.registry.counter_inc("spikes.total", 1)  # corrupt
        report = profiler.report(cost=res.cost)
        assert not report.consistent
        measured, expected, ok = report.reconciliation["spikes.total"]
        assert measured == expected + 1 and not ok
        assert "MISMATCH" in report.render()

    def test_unrecorded_counters_skip_reconciliation(self):
        profiler = Profiler("plain")
        profiler.run(lambda: None)
        from repro.core.cost import CostReport

        report = profiler.report(
            cost=CostReport(algorithm="x", simulated_ticks=5, loading_ticks=0,
                            neuron_count=1, synapse_count=0, spike_count=5)
        )
        assert report.reconciliation == {}
        assert report.consistent  # vacuously

    def test_explicit_phase_context_manager(self):
        profiler = Profiler("manual")
        with profiler.phase("setup"):
            pass
        report = profiler.report()
        assert [p.name for p in report.phases] == ["setup"]

    def test_render_contains_all_sections(self, graph):
        profiler = Profiler("sssp")
        res = profiler.run(spiking_sssp_pseudo, graph, 0)
        text = profiler.report(cost=res.cost).render()
        for fragment in ("profile: sssp", "wall time:", "phases:", "counters:",
                         "cost report:", "reconciliation"):
            assert fragment in text

    def test_profiler_registry_not_leaked(self, graph):
        from repro.telemetry import active_registry

        profiler = Profiler("sssp")
        profiler.run(spiking_sssp_pseudo, graph, 0)
        assert active_registry() is None
