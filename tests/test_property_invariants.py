"""Cross-cutting property-based tests on the algorithm family.

These encode the paper's structural invariants rather than pointwise
answers: agreement between independent implementations, monotonicity in the
hop budget, scale equivariance, and consistency of the cost accounting.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    spiking_khop_poly,
    spiking_khop_pseudo,
    spiking_sssp_poly,
    spiking_sssp_pseudo,
)
from repro.baselines import bellman_ford_khop, dijkstra
from repro.workloads import WeightedDigraph


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v, draw(st.integers(min_value=1, max_value=9))))
    return WeightedDigraph(n, edges)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_all_sssp_implementations_agree(g):
    a = spiking_sssp_pseudo(g, 0).dist
    b = spiking_sssp_poly(g, 0).dist
    c, _ = dijkstra(g, 0)
    assert np.array_equal(a, b)
    assert np.array_equal(a, c)


@given(graphs(), st.integers(min_value=0, max_value=6))
@settings(max_examples=40, deadline=None)
def test_khop_implementations_agree(g, k):
    a = spiking_khop_pseudo(g, 0, k).dist
    b = spiking_khop_poly(g, 0, k).dist
    c, _ = bellman_ford_khop(g, 0, k)
    assert np.array_equal(a, b)
    assert np.array_equal(a, c)


@given(graphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_khop_monotone_in_budget(g, k):
    lo = spiking_khop_pseudo(g, 0, k).dist
    hi = spiking_khop_pseudo(g, 0, k + 1).dist
    for v in range(g.n):
        if lo[v] >= 0:
            assert 0 <= hi[v] <= lo[v]


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_khop_with_full_budget_equals_sssp(g):
    khop = spiking_khop_pseudo(g, 0, g.n - 1).dist
    sssp = spiking_sssp_pseudo(g, 0).dist
    assert np.array_equal(khop, sssp)


@given(graphs(), st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_scale_equivariance(g, factor):
    base = spiking_sssp_pseudo(g, 0).dist
    scaled = spiking_sssp_pseudo(g.scaled(factor), 0).dist
    for v in range(g.n):
        if base[v] >= 0:
            assert scaled[v] == base[v] * factor
        else:
            assert scaled[v] == -1


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_triangle_inequality_over_edges(g):
    dist = spiking_sssp_pseudo(g, 0).dist
    for u, v, w in g.edges():
        if u != v and dist[u] >= 0:
            assert dist[v] != -1
            assert dist[v] <= dist[u] + w


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_cost_report_consistency(g):
    r = spiking_sssp_pseudo(g, 0)
    assert r.cost.simulated_ticks >= 0
    assert r.cost.spike_count == int((r.dist >= 0).sum())  # one spike/vertex
    assert r.cost.total_time == r.cost.simulated_ticks + g.m
    assert r.cost.with_embedding(g.n).total_time >= r.cost.total_time


@given(graphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_pseudo_first_spike_time_is_distance(g, k):
    """The core timing claim: simulated raw ticks == max finite distance."""
    r = spiking_sssp_pseudo(g, 0)
    finite = r.dist[r.dist >= 0]
    assert r.cost.simulated_ticks == int(finite.max())
