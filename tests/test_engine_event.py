"""Behavioral tests of the event-driven engine."""

import numpy as np
import pytest

from repro.core import Network, StopReason, simulate_event_driven
from repro.errors import UnsupportedNetworkError, ValidationError


def chain(delays, **neuron_kwargs):
    net = Network()
    ids = [net.add_neuron(**neuron_kwargs) for _ in range(len(delays) + 1)]
    for i, d in enumerate(delays):
        net.add_synapse(ids[i], ids[i + 1], delay=d)
    return net, ids


class TestBasics:
    def test_long_delay_chain_cheap(self):
        # horizon 3_000_000 ticks, but only 4 spikes happen
        net, ids = chain([1_000_000, 1_000_000, 1_000_000])
        r = simulate_event_driven(net, [ids[0]], max_steps=4_000_000)
        assert r.first_spike.tolist() == [0, 1_000_000, 2_000_000, 3_000_000]

    def test_simultaneous_deliveries_sum(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(tau=1.0)
        c = net.add_neuron(v_threshold=1.5)
        net.add_synapse(a, c, weight=1.0, delay=2)
        net.add_synapse(b, c, weight=1.0, delay=2)
        r = simulate_event_driven(net, [a, b], max_steps=10)
        assert r.first_spike[c] == 2

    def test_sequential_deliveries_respect_decay_tau1(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        c = net.add_neuron(v_threshold=1.5, tau=1.0)
        net.add_synapse(a, c, weight=1.0, delay=1)
        net.add_synapse(a, c, weight=1.0, delay=2)
        r = simulate_event_driven(net, [a], max_steps=10)
        assert r.first_spike[c] == -1

    def test_sequential_deliveries_integrate_tau0(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        c = net.add_neuron(v_threshold=1.5, tau=0.0)
        net.add_synapse(a, c, weight=1.0, delay=1)
        net.add_synapse(a, c, weight=1.0, delay=5)
        r = simulate_event_driven(net, [a], max_steps=10)
        assert r.first_spike[c] == 5

    def test_fractional_decay_closed_form(self):
        # excess decays by (1-tau)^dt between deliveries
        net = Network()
        a = net.add_neuron(tau=1.0)
        c = net.add_neuron(v_threshold=1.24, tau=0.5)
        net.add_synapse(a, c, weight=1.0, delay=1)
        net.add_synapse(a, c, weight=1.0, delay=3)
        # at t=3: 1.0 * 0.5^2 + 1.0 = 1.25 > 1.24
        r = simulate_event_driven(net, [a], max_steps=10)
        assert r.first_spike[c] == 3

    def test_one_shot(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(one_shot=True)
        net.add_synapse(a, b, weight=1.0, delay=1)
        net.add_synapse(a, b, weight=1.0, delay=7)
        r = simulate_event_driven(net, [a], max_steps=20)
        assert r.spike_counts[b] == 1

    def test_pacemakers_rejected(self):
        net = Network()
        net.add_neuron(v_reset=2.0, v_threshold=1.0)
        with pytest.raises(UnsupportedNetworkError):
            simulate_event_driven(net, None, max_steps=5)

    def test_stimulus_validation(self):
        net = Network()
        net.add_neuron()
        with pytest.raises(ValidationError):
            simulate_event_driven(net, [3], max_steps=5)

    def test_record_spikes(self):
        net, ids = chain([2, 3])
        r = simulate_event_driven(net, [ids[0]], max_steps=10, record_spikes=True)
        assert r.spike_events[0].tolist() == [ids[0]]
        assert r.spike_events[2].tolist() == [ids[1]]
        assert r.spike_events[5].tolist() == [ids[2]]


class TestStops:
    def test_quiescent_when_heap_empty(self):
        net, ids = chain([2])
        r = simulate_event_driven(net, [ids[0]], max_steps=100)
        assert r.stop_reason is StopReason.QUIESCENT
        assert r.final_tick == 2

    def test_terminal(self):
        net, ids = chain([4, 4])
        r = simulate_event_driven(net, [ids[0]], max_steps=100, terminal=ids[1])
        assert r.stop_reason is StopReason.TERMINAL
        assert r.final_tick == 4

    def test_watch(self):
        net, ids = chain([4, 4])
        r = simulate_event_driven(net, [ids[0]], max_steps=100, watch=[ids[1], ids[2]])
        assert r.stop_reason is StopReason.WATCH_SET
        assert r.final_tick == 8

    def test_max_steps(self):
        net, ids = chain([50])
        r = simulate_event_driven(net, [ids[0]], max_steps=10)
        assert r.stop_reason is StopReason.MAX_STEPS
        assert r.final_tick == 10
        assert r.first_spike[ids[1]] == -1

    def test_multi_wave_stimulus(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        r = simulate_event_driven(net, {0: [a], 7: [a]}, max_steps=20)
        assert r.spike_counts[a] == 2
