"""Tests of the interactive stepping session."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Network, simulate_dense
from repro.core.session import DenseSession
from repro.errors import SimulationError, ValidationError


def chain(delays, **kw):
    net = Network()
    ids = [net.add_neuron(**kw) for _ in range(len(delays) + 1)]
    for i, d in enumerate(delays):
        net.add_synapse(ids[i], ids[i + 1], delay=d)
    return net, ids


class TestStepping:
    def test_step_by_step_chain(self):
        net, ids = chain([2, 3])
        s = DenseSession(net)
        s.inject([ids[0]])
        assert s.step().tolist() == [ids[0]]  # tick 0
        assert s.step().tolist() == []        # tick 1
        assert s.step().tolist() == [ids[1]]  # tick 2
        s.step(2)
        assert s.fired_last.tolist() == []    # tick 4
        assert s.step().tolist() == [ids[2]]  # tick 5
        assert s.first_spike[ids[2]] == 5

    def test_mid_run_injection(self):
        net, ids = chain([4])
        s = DenseSession(net)
        s.step(3)  # quiet ticks
        s.inject([ids[0]])
        s.step()
        assert s.first_spike[ids[0]] == 3
        s.step(4)
        assert s.first_spike[ids[1]] == 7

    def test_voltage_inspection(self):
        net = Network()
        a = net.add_neuron(tau=1.0)
        b = net.add_neuron(v_threshold=5.0, tau=0.0)
        net.add_synapse(a, b, weight=2.0, delay=1)
        s = DenseSession(net)
        s.inject([a])
        s.step(2)
        assert s.voltages[b] == 2.0

    def test_run_until(self):
        net, ids = chain([3, 3])
        s = DenseSession(net)
        s.inject([ids[0]])
        t = s.run_until(lambda sess: sess.fired_ever[ids[2]])
        assert t == 6

    def test_run_until_budget(self):
        net, ids = chain([3])
        s = DenseSession(net)
        with pytest.raises(SimulationError):
            s.run_until(lambda sess: False, max_ticks=10)

    def test_validation(self):
        net, ids = chain([1])
        s = DenseSession(net)
        with pytest.raises(ValidationError):
            s.inject([99])
        with pytest.raises(ValidationError):
            s.step(0)


@st.composite
def random_networks(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    net = Network()
    for _ in range(n):
        net.add_neuron(
            v_threshold=draw(st.sampled_from([0.5, 1.5])),
            tau=draw(st.sampled_from([0.0, 1.0])),
            one_shot=draw(st.booleans()),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        net.add_synapse(
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            weight=draw(st.sampled_from([-1.0, 1.0])),
            delay=draw(st.integers(min_value=1, max_value=4)),
        )
    stim = sorted({draw(st.integers(min_value=0, max_value=n - 1)) for _ in range(2)})
    return net, stim


@given(random_networks())
@settings(max_examples=40, deadline=None)
def test_session_matches_batch_engine(case):
    net, stim = case
    horizon = 20
    batch = simulate_dense(
        net, stim, max_steps=horizon, stop_when_quiescent=False, record_spikes=True
    )
    s = DenseSession(net)
    s.inject(stim)
    for t in range(horizon + 1):
        fired = s.step()
        want = batch.spike_events.get(t, np.empty(0, dtype=np.int64))
        assert fired.tolist() == sorted(want.tolist()), t
    assert s.first_spike.tolist() == batch.first_spike.tolist()
    assert s.spike_counts.tolist() == batch.spike_counts.tolist()
