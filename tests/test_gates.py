"""Tests of the Figure-1 gadgets (delay simulation, latch, one-shot)."""

import pytest

from repro.circuits import build_delay_gadget, build_latch, build_one_shot_gadget
from repro.core import Network, simulate
from repro.errors import ValidationError


class TestDelayGadget:
    @pytest.mark.parametrize("d", [2, 3, 5, 10, 31])
    def test_exit_fires_exactly_at_entry_plus_d(self, d):
        net = Network()
        g = build_delay_gadget(net, d)
        r = simulate(net, [g.entry], engine="dense", max_steps=3 * d + 5,
                     record_spikes=True)
        assert r.first_spike[g.exit] == d
        assert r.spike_counts[g.exit] == 1

    def test_generator_stops_after_inhibition(self, ):
        net = Network()
        g = build_delay_gadget(net, 4)
        r = simulate(net, [g.entry], engine="dense", max_steps=30)
        # generator fires from the stimulus tick until the stop signal: d+1 spikes
        assert r.spike_counts[g.entry] == 5

    def test_network_goes_quiescent(self):
        net = Network()
        g = build_delay_gadget(net, 6)
        r = simulate(net, [g.entry], engine="dense", max_steps=100)
        assert r.final_tick < 100  # quiescent stop, no runaway loop

    def test_d_below_two_rejected(self):
        net = Network()
        with pytest.raises(ValidationError):
            build_delay_gadget(net, 1)

    def test_uses_exactly_two_neurons(self):
        net = Network()
        build_delay_gadget(net, 9)
        assert net.n_neurons == 2  # the Figure-1A promise


class TestLatch:
    def test_recall_after_set(self):
        net = Network()
        latch = build_latch(net)
        r = simulate(net, {0: [latch.set_input], 8: [latch.recall]},
                     engine="dense", max_steps=20, stop_when_quiescent=False)
        assert r.first_spike[latch.output] == 9

    def test_recall_without_set_silent(self):
        net = Network()
        latch = build_latch(net)
        r = simulate(net, {8: [latch.recall]}, engine="dense", max_steps=20,
                     stop_when_quiescent=False)
        assert r.first_spike[latch.output] == -1

    def test_memory_fires_indefinitely(self):
        net = Network()
        latch = build_latch(net)
        r = simulate(net, [latch.set_input], engine="dense", max_steps=50,
                     stop_when_quiescent=False)
        assert r.spike_counts[latch.memory] == 50  # every tick from 1 on

    def test_multiple_recalls_without_reset(self):
        net = Network()
        latch = build_latch(net)
        r = simulate(net, {0: [latch.set_input], 5: [latch.recall], 12: [latch.recall]},
                     engine="dense", max_steps=20, stop_when_quiescent=False,
                     record_spikes=True)
        outs = sorted(t for t, ids in r.spike_events.items()
                      if latch.output in ids.tolist())
        assert outs == [6, 13]

    def test_reset_on_recall_clears_memory(self):
        net = Network()
        latch = build_latch(net, reset_on_recall=True)
        r = simulate(net, {0: [latch.set_input], 5: [latch.recall], 12: [latch.recall]},
                     engine="dense", max_steps=25, stop_when_quiescent=False,
                     record_spikes=True)
        outs = sorted(t for t, ids in r.spike_events.items()
                      if latch.output in ids.tolist())
        assert outs == [6]  # second recall finds the latch cleared

    def test_set_again_after_reset(self):
        net = Network()
        latch = build_latch(net, reset_on_recall=True)
        r = simulate(net, {0: [latch.set_input], 5: [latch.recall],
                           10: [latch.set_input], 15: [latch.recall]},
                     engine="dense", max_steps=25, stop_when_quiescent=False,
                     record_spikes=True)
        outs = sorted(t for t, ids in r.spike_events.items()
                      if latch.output in ids.tolist())
        assert outs == [6, 16]


class TestOneShotGadget:
    def test_relays_first_input_only(self):
        net = Network()
        g = build_one_shot_gadget(net)
        src = net.add_neuron(tau=1.0)
        net.add_synapse(src, g.relay, weight=1.0, delay=1)
        r = simulate(net, {0: [src], 6: [src], 12: [src]}, engine="dense",
                     max_steps=30, stop_when_quiescent=False, record_spikes=True)
        relays = sorted(t for t, ids in r.spike_events.items()
                        if g.relay in ids.tolist())
        assert relays == [1]

    def test_matches_one_shot_flag_outside_window(self):
        """Gadget == engine flag when inputs are >= 3 ticks apart."""
        arrivals = [0, 5, 9, 20]
        # gadget version
        net_g = Network()
        g = build_one_shot_gadget(net_g)
        src = net_g.add_neuron(tau=1.0)
        net_g.add_synapse(src, g.relay, weight=1.0, delay=1)
        rg = simulate(net_g, {t: [src] for t in arrivals}, engine="dense",
                      max_steps=40, stop_when_quiescent=False)
        # flag version
        net_f = Network()
        relay = net_f.add_neuron(one_shot=True)
        src_f = net_f.add_neuron(tau=1.0)
        net_f.add_synapse(src_f, relay, weight=1.0, delay=1)
        rf = simulate(net_f, {t: [src_f] for t in arrivals}, engine="dense",
                      max_steps=40, stop_when_quiescent=False)
        assert rg.first_spike[g.relay] == rf.first_spike[relay]
        assert rg.spike_counts[g.relay] == rf.spike_counts[relay] == 1
