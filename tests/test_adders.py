"""Tests of the Figure-4 adders, add-constant, and subtract-one circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    CircuitBuilder,
    add_constant,
    carry_lookahead_adder,
    ripple_adder,
    run_circuit,
    siu_adder,
    subtract_one,
)
from repro.errors import CircuitError

ADDERS = {"cla": carry_lookahead_adder, "ripple": ripple_adder, "siu": siu_adder}


def build_adder(kind, width):
    b = CircuitBuilder()
    xa = b.input_bits("a", width)
    xb = b.input_bits("b", width)
    b.output_bits("out", ADDERS[kind](b, xa, xb))
    return b


class TestTwoOperandAdders:
    @pytest.mark.parametrize("kind", list(ADDERS))
    def test_exhaustive_3bit(self, kind):
        b = build_adder(kind, 3)
        for x in range(8):
            for y in range(8):
                assert run_circuit(b, {"a": x, "b": y})["out"] == x + y, (kind, x, y)

    @pytest.mark.parametrize("kind", list(ADDERS))
    def test_carry_out_width(self, kind):
        b = build_adder(kind, 4)
        assert run_circuit(b, {"a": 15, "b": 15})["out"] == 30  # needs 5 bits

    @given(
        kind=st.sampled_from(sorted(ADDERS)),
        width=st.integers(min_value=1, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random(self, kind, width, data):
        x = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        y = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        b = build_adder(kind, width)
        assert run_circuit(b, {"a": x, "b": y})["out"] == x + y

    def test_cla_constant_depth(self):
        depths = set()
        for width in (2, 6, 12):
            b = build_adder("cla", width)
            depths.add(b.depth)
        assert len(depths) == 1
        assert depths.pop() <= 3  # two layers + output alignment

    def test_ripple_depth_linear(self):
        d = {}
        for width in (2, 4, 6):  # arithmetic spacing: equal depth increments
            d[width] = build_adder("ripple", width).depth
        assert d[6] - d[4] == d[4] - d[2]
        assert d[6] > d[4] > d[2]

    def test_cla_size_linear(self):
        def size(width):
            b = CircuitBuilder()
            xa = b.input_bits("a", width)
            xb = b.input_bits("b", width)
            carry_lookahead_adder(b, xa, xb)
            return b.size

        assert size(16) < 2.5 * size(8)

    def test_siu_constant_depth_unit_weights(self):
        import numpy as np

        depths = set()
        for width in (2, 6, 12):
            b = CircuitBuilder()
            xa = b.input_bits("a", width)
            xb = b.input_bits("b", width)
            b.output_bits("out", siu_adder(b, xa, xb))
            depths.add(b.depth)
            weights = b.net.compile().syn_weight
            assert float(np.abs(weights).max()) <= 2.0  # small weights
        assert len(depths) == 1  # constant depth

    def test_siu_size_quadratic(self):
        def size(width):
            b = CircuitBuilder()
            xa = b.input_bits("a", width)
            xb = b.input_bits("b", width)
            siu_adder(b, xa, xb)
            return b.size

        # O(lambda^2): doubling width should more than double the size
        assert size(16) > 2.5 * size(8)

    @pytest.mark.parametrize("kind", list(ADDERS))
    def test_width_mismatch_rejected(self, kind):
        b = CircuitBuilder()
        xa = b.input_bits("a", 3)
        xb = b.input_bits("b", 2)
        with pytest.raises(CircuitError):
            ADDERS[kind](b, xa, xb)


class TestAddConstant:
    def build(self, width, constant, out_width=None):
        b = CircuitBuilder()
        xs = b.input_bits("x", width)
        (v,) = b.input_bits("v", 1)
        outs, ov = add_constant(b, xs, constant, v, out_width=out_width)
        b.output_bits("out", outs)
        b.output_bits("valid", [ov], aligned=False)
        return b

    @pytest.mark.parametrize("constant", [0, 1, 3, 7, 12, 100])
    def test_exhaustive_4bit(self, constant):
        b = self.build(4, constant)
        for x in range(16):
            r = run_circuit(b, {"x": x, "v": 1})
            assert r["out"] == x + constant, (constant, x)
            assert r["valid"] == 1

    def test_invalid_input_produces_silence(self):
        b = self.build(4, 9)
        for x in (0, 7, 15):
            r = run_circuit(b, {"x": x, "v": 0})
            assert r["out"] == 0 and r["valid"] == 0

    def test_truncated_out_width_wraps(self):
        b = self.build(3, 7, out_width=3)
        r = run_circuit(b, {"x": 5, "v": 1})
        assert r["out"] == (5 + 7) % 8

    def test_negative_constant_rejected(self):
        b = CircuitBuilder()
        xs = b.input_bits("x", 3)
        (v,) = b.input_bits("v", 1)
        with pytest.raises(CircuitError):
            add_constant(b, xs, -1, v)

    def test_constant_depth(self):
        depths = set()
        for width, k in [(3, 5), (8, 77), (12, 1000)]:
            b = self.build(width, k)
            depths.add(max(s.offset for s in b.output_groups["out"]))
        assert len(depths) == 1

    @given(
        width=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random(self, width, data):
        x = data.draw(st.integers(min_value=0, max_value=2**width - 1))
        k = data.draw(st.integers(min_value=0, max_value=2**width))
        b = self.build(width, k)
        assert run_circuit(b, {"x": x, "v": 1})["out"] == x + k


class TestSubtractOne:
    def build(self, width):
        b = CircuitBuilder()
        xs = b.input_bits("x", width)
        (v,) = b.input_bits("v", 1)
        outs, ov = subtract_one(b, xs, v)
        b.output_bits("out", outs)
        b.output_bits("valid", [ov], aligned=False)
        return b

    @pytest.mark.parametrize("width", [1, 2, 4, 6])
    def test_decrement_all_values(self, width):
        b = self.build(width)
        for x in range(1, 2**width):
            r = run_circuit(b, {"x": x, "v": 1})
            assert r["out"] == x - 1, (width, x)

    def test_zero_wraps_to_all_ones(self):
        b = self.build(4)
        assert run_circuit(b, {"x": 0, "v": 1})["out"] == 15

    def test_invalid_is_silent(self):
        b = self.build(4)
        r = run_circuit(b, {"x": 9, "v": 0})
        assert r["out"] == 0 and r["valid"] == 0
