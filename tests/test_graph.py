"""Unit tests for the WeightedDigraph CSR container."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.workloads import WeightedDigraph


class TestConstruction:
    def test_empty_graph(self):
        g = WeightedDigraph(0, [])
        assert g.n == 0 and g.m == 0
        assert g.max_length() == 0 and g.min_length() == 0

    def test_vertices_without_edges(self):
        g = WeightedDigraph(5, [])
        assert g.n == 5 and g.m == 0
        assert g.out_degree(3) == 0

    def test_basic_edges(self):
        g = WeightedDigraph(3, [(0, 1, 4), (1, 2, 5), (0, 2, 9)])
        assert g.m == 3
        heads, lengths = g.out_edges(0)
        assert sorted(heads.tolist()) == [1, 2]
        assert sorted(lengths.tolist()) == [4, 9]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            WeightedDigraph(-1, [])

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            WeightedDigraph(2, [(0, 2, 1)])
        with pytest.raises(GraphError):
            WeightedDigraph(2, [(-1, 0, 1)])

    def test_nonpositive_length_rejected(self):
        with pytest.raises(GraphError):
            WeightedDigraph(2, [(0, 1, 0)])
        with pytest.raises(GraphError):
            WeightedDigraph(2, [(0, 1, -3)])

    def test_parallel_edges_allowed(self):
        g = WeightedDigraph(2, [(0, 1, 1), (0, 1, 5)])
        assert g.m == 2
        assert g.out_degree(0) == 2

    def test_self_loops_allowed_and_detected(self):
        g = WeightedDigraph(2, [(0, 0, 1), (0, 1, 1)])
        assert g.has_self_loops()
        g2 = WeightedDigraph(2, [(0, 1, 1)])
        assert not g2.has_self_loops()

    def test_from_arrays_matches_tuple_construction(self):
        edges = [(0, 1, 2), (2, 0, 3), (1, 2, 1)]
        a = WeightedDigraph(3, edges)
        b = WeightedDigraph.from_arrays(3, [0, 2, 1], [1, 0, 2], [2, 3, 1])
        assert a == b

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(GraphError):
            WeightedDigraph.from_arrays(3, [0, 1], [1], [2, 3])


class TestCSRInvariants:
    def test_indptr_monotone_and_complete(self):
        g = WeightedDigraph(4, [(2, 0, 1), (0, 3, 2), (2, 1, 3), (1, 1, 4)])
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.m
        assert (np.diff(g.indptr) >= 0).all()

    def test_out_edges_slice_tails_consistent(self):
        g = WeightedDigraph(4, [(2, 0, 1), (0, 3, 2), (2, 1, 3)])
        for u in range(4):
            lo, hi = g.indptr[u], g.indptr[u + 1]
            assert (g.tails[lo:hi] == u).all()

    def test_in_degrees(self):
        g = WeightedDigraph(3, [(0, 1, 1), (2, 1, 1), (1, 2, 1)])
        assert g.in_degrees().tolist() == [0, 2, 1]

    def test_max_out_degree(self):
        g = WeightedDigraph(3, [(0, 1, 1), (0, 2, 1), (1, 2, 1)])
        assert g.max_out_degree() == 2

    def test_edge_iteration_covers_all(self):
        edges = [(0, 1, 2), (2, 0, 3), (1, 2, 1)]
        g = WeightedDigraph(3, edges)
        assert sorted(g.edges()) == sorted(edges)


class TestTransforms:
    def test_reverse(self):
        g = WeightedDigraph(3, [(0, 1, 2), (1, 2, 5)])
        r = g.reverse()
        assert sorted(r.edges()) == [(1, 0, 2), (2, 1, 5)]

    def test_reverse_cached(self):
        g = WeightedDigraph(2, [(0, 1, 1)])
        assert g.reverse() is g.reverse()

    def test_scaled(self):
        g = WeightedDigraph(2, [(0, 1, 3)])
        s = g.scaled(4)
        assert list(s.edges()) == [(0, 1, 12)]

    def test_scaled_invalid_factor(self):
        g = WeightedDigraph(2, [(0, 1, 3)])
        with pytest.raises(GraphError):
            g.scaled(0)

    def test_max_min_length(self):
        g = WeightedDigraph(3, [(0, 1, 3), (1, 2, 8)])
        assert g.max_length() == 8
        assert g.min_length() == 3


class TestNetworkxInterop:
    def test_roundtrip_directed(self):
        g = WeightedDigraph(4, [(0, 1, 2), (1, 2, 5), (3, 0, 7)])
        back = WeightedDigraph.from_networkx(g.to_networkx())
        assert back == g

    def test_from_undirected_adds_both_orientations(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(range(3))
        nxg.add_edge(0, 1, weight=4)
        g = WeightedDigraph.from_networkx(nxg)
        assert sorted(g.edges()) == [(0, 1, 4), (1, 0, 4)]

    def test_from_networkx_bad_labels(self):
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_edge("a", "b", weight=1)
        with pytest.raises(GraphError):
            WeightedDigraph.from_networkx(nxg)

    def test_to_networkx_parallel_edges_take_min(self):
        g = WeightedDigraph(2, [(0, 1, 5), (0, 1, 2)])
        nxg = g.to_networkx()
        assert nxg[0][1]["weight"] == 2


class TestEquality:
    def test_equal_regardless_of_edge_order(self):
        a = WeightedDigraph(3, [(0, 1, 1), (1, 2, 2)])
        b = WeightedDigraph(3, [(1, 2, 2), (0, 1, 1)])
        assert a == b

    def test_unequal_different_weight(self):
        a = WeightedDigraph(2, [(0, 1, 1)])
        b = WeightedDigraph(2, [(0, 1, 2)])
        assert a != b

    def test_repr_mentions_sizes(self):
        g = WeightedDigraph(3, [(0, 1, 7)])
        assert "n=3" in repr(g) and "m=1" in repr(g) and "U=7" in repr(g)
