"""Tests of the spike-raster and rate utilities."""

import numpy as np
import pytest

from repro.core import Network, simulate
from repro.core.raster import firing_rates, interspike_intervals, spike_raster
from repro.errors import ValidationError


@pytest.fixture
def chain_result():
    net = Network()
    ids = [net.add_neuron(tau=1.0) for _ in range(3)]
    net.add_synapse(ids[0], ids[1], delay=2)
    net.add_synapse(ids[1], ids[2], delay=3)
    r = simulate(net, [ids[0]], engine="dense", max_steps=10, record_spikes=True)
    return ids, r


class TestRaster:
    def test_marks_at_spike_ticks(self, chain_result):
        ids, r = chain_result
        text = spike_raster(r, ids, t_end=6)
        lines = text.splitlines()
        assert lines[0].endswith("|......")
        assert lines[1].endswith("..|....")
        assert lines[2].endswith(".....|.")

    def test_custom_names_and_window(self, chain_result):
        ids, r = chain_result
        text = spike_raster(r, ids, t_start=2, t_end=5, names=["a", "b", "c"])
        assert text.splitlines()[0].startswith("a ")
        assert len(text.splitlines()[0]) == 2 + 4  # label + 4 ticks

    def test_name_count_checked(self, chain_result):
        ids, r = chain_result
        with pytest.raises(ValidationError):
            spike_raster(r, ids, names=["only-one"])

    def test_window_order_checked(self, chain_result):
        ids, r = chain_result
        with pytest.raises(ValidationError):
            spike_raster(r, ids, t_start=5, t_end=2)

    def test_requires_recording(self):
        net = Network()
        a = net.add_neuron()
        r = simulate(net, [a], engine="dense", max_steps=3)
        with pytest.raises(ValidationError):
            spike_raster(r, [a])


class TestRates:
    def test_firing_rates(self, chain_result):
        ids, r = chain_result
        rates = firing_rates(r, horizon=9)
        assert rates[ids[0]] == pytest.approx(1 / 10)

    def test_latch_rate_one(self):
        net = Network()
        m = net.add_neuron(tau=1.0)
        net.add_synapse(m, m, delay=1)
        r = simulate(net, [m], engine="dense", max_steps=19,
                     stop_when_quiescent=False, record_spikes=True)
        assert firing_rates(r)[m] == pytest.approx(1.0)

    def test_interspike_intervals_regular(self):
        net = Network()
        m = net.add_neuron(tau=1.0)
        net.add_synapse(m, m, delay=1)
        r = simulate(net, [m], engine="dense", max_steps=10,
                     stop_when_quiescent=False, record_spikes=True)
        isi = interspike_intervals(r, m)
        assert (isi == 1).all()

    def test_interspike_intervals_sparse(self, chain_result):
        ids, r = chain_result
        assert interspike_intervals(r, ids[0]).size == 0


class TestEdgeCases:
    @pytest.fixture
    def silent_result(self):
        """A no-spike execution: the stimulus list is empty."""
        net = Network()
        ids = [net.add_neuron(tau=1.0) for _ in range(2)]
        net.add_synapse(ids[0], ids[1], delay=1)
        r = simulate(net, [], engine="dense", max_steps=5, record_spikes=True)
        return ids, r

    def test_raster_of_silent_run_is_all_empty(self, silent_result):
        ids, r = silent_result
        text = spike_raster(r, ids, t_end=4)
        for line in text.splitlines():
            assert "|" not in line
            assert line.endswith("." * 5)

    def test_raster_with_no_neurons_is_empty(self, chain_result):
        _, r = chain_result
        assert spike_raster(r, []) == ""

    def test_rates_of_silent_run_are_zero(self, silent_result):
        _, r = silent_result
        assert (firing_rates(r, horizon=4) == 0.0).all()

    def test_isi_of_silent_neuron_is_empty(self, silent_result):
        ids, r = silent_result
        assert interspike_intervals(r, ids[0]).size == 0

    def test_single_neuron_network(self):
        net = Network()
        nid = net.add_neuron(tau=1.0)
        r = simulate(net, [nid], engine="dense", max_steps=3, record_spikes=True)
        text = spike_raster(r, [nid])
        assert text.splitlines()[0].split(" ", 1)[1].startswith("|")
        assert firing_rates(r)[nid] > 0
        assert interspike_intervals(r, nid).size == 0

    def test_zero_tick_window(self, chain_result):
        ids, r = chain_result
        text = spike_raster(r, ids, t_start=0, t_end=0)
        assert all(len(line.split(" ", 1)[1]) == 1 for line in text.splitlines())

    def test_negative_horizon_rejected(self, silent_result):
        _, r = silent_result
        with pytest.raises(ValidationError):
            firing_rates(r, horizon=-1)
