"""Tests of the runtime watchdog guards (repro.core.watchdog)."""

import numpy as np
import pytest

from repro.core import Network, StopReason, Watchdog, simulate, simulate_dense, simulate_event_driven
from repro.core.session import DenseSession
from repro.errors import NonQuiescenceError, RunawaySpikesError, ValidationError, WatchdogError


def oscillator():
    """Two mutually excited neurons: fires every tick forever once started."""
    net = Network()
    a = net.add_neuron("ping", v_threshold=0.5, tau=1.0)
    b = net.add_neuron("pong", v_threshold=0.5, tau=1.0)
    net.add_synapse(a, b, weight=1.0, delay=1)
    net.add_synapse(b, a, weight=1.0, delay=1)
    return net, a, b


def wavefront(k=10):
    """A one-shot chain: every neuron fires exactly once."""
    net = Network()
    for _ in range(k):
        net.add_neuron(one_shot=True)
    for i in range(k - 1):
        net.add_synapse(i, i + 1, delay=1)
    return net


class TestConfigValidation:
    def test_window_too_small(self):
        with pytest.raises(ValidationError):
            Watchdog(window=1)

    def test_limit_out_of_range(self):
        with pytest.raises(ValidationError):
            Watchdog(window=8, max_spikes_per_neuron=0)
        with pytest.raises(ValidationError):
            Watchdog(window=8, max_spikes_per_neuron=9)

    def test_top_k_positive(self):
        with pytest.raises(ValidationError):
            Watchdog(top_k=0)

    def test_default_limit_is_half_window(self):
        assert Watchdog(window=10).effective_limit == 5


class TestRunawayDetection:
    def test_oscillator_stops_with_runaway(self):
        net, a, b = oscillator()
        r = simulate_dense(net, [a], max_steps=10_000, watchdog=Watchdog(window=16))
        assert r.stop_reason is StopReason.RUNAWAY
        assert r.final_tick < 100  # tripped early, budget untouched

    def test_report_names_offending_neurons(self):
        net, a, b = oscillator()
        r = simulate_dense(net, [a], max_steps=10_000, watchdog=Watchdog(window=16))
        assert r.diagnostic is not None
        assert r.diagnostic.kind == "runaway"
        assert set(r.diagnostic.hot_neurons) == {a, b}
        text = r.diagnostic.describe()
        assert "ping" in text and "pong" in text and "runaway" in text

    def test_wavefront_never_trips(self):
        net = wavefront()
        r = simulate_dense(net, [0], max_steps=100, watchdog=Watchdog(window=8))
        assert r.stop_reason is StopReason.QUIESCENT
        assert r.diagnostic is None

    def test_raise_on_trip(self):
        net, a, _ = oscillator()
        with pytest.raises(RunawaySpikesError) as exc:
            simulate_dense(
                net, [a], max_steps=10_000,
                watchdog=Watchdog(window=16, raise_on_trip=True),
            )
        assert exc.value.report.kind == "runaway"
        assert isinstance(exc.value, WatchdogError)

    def test_ignore_exempts_neurons(self):
        net, a, b = oscillator()
        r = simulate_dense(
            net, [a], max_steps=200,
            watchdog=Watchdog(window=16, ignore=(a, b)),
        )
        assert r.stop_reason is StopReason.MAX_STEPS

    def test_event_engine_agrees_with_dense(self):
        net, a, b = oscillator()
        wd = Watchdog(window=16)
        rd = simulate_dense(net, [a], max_steps=10_000, watchdog=wd)
        re_ = simulate_event_driven(net, [a], max_steps=10_000, watchdog=wd)
        assert re_.stop_reason is StopReason.RUNAWAY
        assert re_.final_tick == rd.final_tick
        assert re_.diagnostic.hot == rd.diagnostic.hot

    def test_dispatcher_forwards_watchdog(self):
        net, a, _ = oscillator()
        r = simulate(net, [a], max_steps=10_000, watchdog=Watchdog(window=16))
        assert r.stop_reason is StopReason.RUNAWAY


class TestNonQuiescence:
    def test_max_steps_with_activity_attaches_report(self):
        net, a, _ = oscillator()
        r = simulate_dense(
            net, [a], max_steps=50,
            watchdog=Watchdog(window=16, max_spikes_per_neuron=16),  # never trips
        )
        assert r.stop_reason is StopReason.MAX_STEPS
        assert r.diagnostic is not None
        assert r.diagnostic.kind == "non_quiescent"
        assert "still active" in r.diagnostic.describe()

    def test_exhausted_but_quiet_budget_has_no_report(self):
        net = wavefront(k=5)
        # budget ends long after the wave passed; window has no activity
        r = simulate_dense(
            net, [0], max_steps=50, stop_when_quiescent=False,
            watchdog=Watchdog(window=8),
        )
        assert r.stop_reason is StopReason.MAX_STEPS
        assert r.diagnostic is None

    def test_raise_on_trip_raises_non_quiescence(self):
        net, a, _ = oscillator()
        with pytest.raises(NonQuiescenceError):
            simulate_dense(
                net, [a], max_steps=50,
                watchdog=Watchdog(window=16, max_spikes_per_neuron=16, raise_on_trip=True),
            )

    def test_event_engine_non_quiescence(self):
        net, a, _ = oscillator()
        r = simulate_event_driven(
            net, [a], max_steps=50,
            watchdog=Watchdog(window=16, max_spikes_per_neuron=16),
        )
        assert r.stop_reason is StopReason.MAX_STEPS
        assert r.diagnostic is not None and r.diagnostic.kind == "non_quiescent"


class TestSessionWatchdog:
    def test_session_raises_on_runaway(self):
        net, a, _ = oscillator()
        sess = DenseSession(net, watchdog=Watchdog(window=16))
        sess.inject([a])
        with pytest.raises(RunawaySpikesError) as exc:
            sess.step(1000)
        assert set(exc.value.report.hot_neurons) == {0, 1}

    def test_session_quiet_run_unaffected(self):
        net = wavefront(k=6)
        sess = DenseSession(net, watchdog=Watchdog(window=8))
        sess.inject([0])
        for _ in range(20):
            sess.step()
        assert sess.spike_counts.sum() == 6
