"""Lint over derived artifacts: sparse-compiled networks and shard routers.

Satellite coverage for the SC15x/SC16x artifact verifiers and for
:func:`lint_network`'s acceptance of non-dense network forms:

1. **SC1xx on sparse** — one regression test per structural rule, each
   seeding its violation in a *sparse-compiled* circuit and asserting the
   exact code still fires (the dense-array rules must see through the
   artifact wrapper).
2. **SC15x mutation** — each sparse-artifact invariant is corrupted in
   isolation and must be caught by :func:`verify_sparse_artifact`.
3. **SC16x mutation** — shard partitions, clean and corrupted, through
   :func:`verify_shard_partition` and the ``lint_network`` delegation.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.network import Network
from repro.core.sparse import sparse_compile
from repro.service.net.shard import partition_graph
from repro.staticcheck import (
    ARTIFACT_RULES,
    Severity,
    lint_network,
    verify_shard_partition,
    verify_sparse_artifact,
)
from repro.workloads.generators import gnp_graph


def _circuit_net():
    """A small healthy multi-delay network (compiled, arrays mutable)."""
    net = Network()
    ids = [net.add_neuron(v_threshold=0.5, tau=1.0) for _ in range(6)]
    net.mark_input(ids[0])
    net.mark_output(ids[5])
    for i in range(5):
        net.add_synapse(ids[i], ids[i + 1], weight=1.0, delay=1 + (i % 3))
    net.add_synapse(ids[0], ids[3], weight=2.0, delay=2)
    net.add_synapse(ids[1], ids[4], weight=1.0, delay=4)
    return net


def _sparse(net=None):
    c = (net or _circuit_net()).compile()
    return c, sparse_compile(c)


# --------------------------------------------------------------------------- #
# 1. The 12 structural rules fire through a sparse-compiled network
# --------------------------------------------------------------------------- #


def test_sparse_sc101_dangling_synapse():
    c, art = _sparse()
    c.syn_dst[0] = c.n + 5  # after sparse_compile: artifact now stale too
    report = lint_network(art, subject="mutant")
    assert "SC101" in report.codes() and not report.ok


def test_sparse_sc102_bad_delay():
    c, art = _sparse()
    c.syn_delay[0] = 0
    report = lint_network(art, subject="mutant")
    assert "SC102" in report.codes() and not report.ok


def test_sparse_sc103_nonfinite_weight():
    c, art = _sparse()
    c.syn_weight[0] = np.nan
    report = lint_network(art, subject="mutant")
    assert "SC103" in report.codes() and not report.ok


def test_sparse_sc104_duplicate_synapse():
    net = Network()
    a = net.add_neuron()
    b = net.add_neuron(v_threshold=0.5)
    net.mark_input(a)
    net.add_synapse(a, b, weight=1.0, delay=2)
    net.add_synapse(a, b, weight=1.0, delay=2)
    _, art = _sparse(net)
    report = lint_network(art, subject="mutant")
    assert "SC104" in report.codes()
    assert report.ok  # warning severity; artifact itself is consistent


def test_sparse_sc110_cycle_in_feedforward():
    net = Network()
    a = net.add_neuron(tau=1.0)
    b = net.add_neuron(tau=1.0)
    net.mark_input(a)
    net.add_synapse(a, b)
    net.add_synapse(b, a)
    _, art = _sparse(net)
    report = lint_network(art, subject="mutant", expect_feedforward=True)
    assert "SC110" in report.codes() and not report.ok


def test_sparse_sc120_unreachable_output():
    net = Network()
    a = net.add_neuron()
    mid = net.add_neuron()
    out = net.add_neuron()
    net.mark_input(a)
    net.mark_output(out)
    net.add_synapse(a, mid)
    _, art = _sparse(net)
    report = lint_network(art, subject="mutant")
    assert "SC120" in report.codes() and not report.ok


def test_sparse_sc121_unreachable_neuron():
    net = Network()
    a = net.add_neuron()
    b = net.add_neuron()
    orphan = net.add_neuron()
    other = net.add_neuron()
    net.mark_input(a)
    net.mark_output(b)
    net.add_synapse(a, b)
    net.add_synapse(orphan, other)
    _, art = _sparse(net)
    report = lint_network(art, subject="mutant")
    assert "SC121" in report.codes() and report.ok


def test_sparse_sc122_isolated_neuron():
    net = Network()
    a = net.add_neuron()
    b = net.add_neuron()
    net.add_neuron()  # isolated
    net.mark_input(a)
    net.mark_output(b)
    net.add_synapse(a, b)
    _, art = _sparse(net)
    report = lint_network(art, subject="mutant")
    assert "SC122" in report.codes()


def test_sparse_sc130_dead_neuron():
    net = Network()
    a = net.add_neuron()
    mid = net.add_neuron(v_threshold=5.0, tau=1.0)
    out = net.add_neuron()
    net.mark_input(a)
    net.mark_output(out)
    net.add_synapse(a, mid, weight=1.0)
    net.add_synapse(a, out, weight=1.0)
    _, art = _sparse(net)
    report = lint_network(art, subject="mutant")
    assert "SC130" in report.codes()


def test_sparse_sc131_hot_neuron():
    c, art = _sparse()
    c.v_reset[1] = 2.0  # pacemaker
    report = lint_network(art, subject="mutant")
    assert "SC131" in report.codes()


def test_sparse_sc140_bad_designation():
    c, art = _sparse()
    c.outputs[0] = c.n + 7
    report = lint_network(art, subject="mutant")
    assert "SC140" in report.codes() and not report.ok


def test_sparse_sc141_nonfinite_params():
    c, art = _sparse()
    c.tau[0] = 2.0
    report = lint_network(art, subject="mutant")
    assert "SC141" in report.codes() and not report.ok


def test_clean_sparse_network_lints_clean():
    _, art = _sparse()
    report = lint_network(art, subject="clean", entries=[0])
    assert report.ok, report.render()
    assert not any(code.startswith("SC15") for code in report.codes())


# --------------------------------------------------------------------------- #
# 2. SC15x: sparse-artifact invariant mutations
# --------------------------------------------------------------------------- #


def test_artifact_clean_passes_both_entry_points():
    c, art = _sparse()
    assert verify_sparse_artifact(art).ok
    assert verify_sparse_artifact(c).ok  # builds the artifact on demand


def test_artifact_sc150_delay_table():
    c, art = _sparse()
    bad = dataclasses.replace(art, delays=art.delays[::-1].copy())
    report = verify_sparse_artifact(bad)
    assert "SC150" in report.codes() and not report.ok


def test_artifact_sc151_syn_partition():
    c, art = _sparse()
    b0 = art.buckets[0]
    syn = b0.syn.copy()
    syn[0] = syn[-1] if syn.size > 1 else c.m - 1  # duplicate / drop an id
    bad_bucket = dataclasses.replace(b0, syn=syn)
    bad = dataclasses.replace(art, buckets=(bad_bucket,) + art.buckets[1:])
    report = verify_sparse_artifact(bad)
    assert "SC151" in report.codes() and not report.ok


def test_artifact_sc152_bucket_label():
    c, art = _sparse()
    labels = art.syn_bucket.copy()
    labels[0] = (labels[0] + 1) % len(art.buckets)
    bad = dataclasses.replace(art, syn_bucket=labels)
    report = verify_sparse_artifact(bad)
    assert "SC152" in report.codes() and not report.ok


def test_artifact_sc153_bucket_content():
    c, art = _sparse()
    k = next(i for i, b in enumerate(art.buckets) if b.nnz)
    b = art.buckets[k]
    mat = b.matrix.copy()
    mat.data[0] += 1.0  # weight no longer matches the dense CSR
    bad_bucket = dataclasses.replace(b, matrix=mat)
    bad = dataclasses.replace(
        art, buckets=art.buckets[:k] + (bad_bucket,) + art.buckets[k + 1 :]
    )
    report = verify_sparse_artifact(bad)
    assert "SC153" in report.codes() and not report.ok


def test_artifact_sc154_indptr_shape():
    c, art = _sparse()
    k = next(i for i, b in enumerate(art.buckets) if b.nnz)
    b = art.buckets[k]
    bad_bucket = dataclasses.replace(b, indptr=b.indptr[:-1].copy())
    bad = dataclasses.replace(
        art, buckets=art.buckets[:k] + (bad_bucket,) + art.buckets[k + 1 :]
    )
    report = verify_sparse_artifact(bad)
    assert "SC154" in report.codes() and not report.ok


def test_artifact_sc155_stale_network():
    c, art = _sparse()
    other = _circuit_net().compile()  # structurally equal, different object
    report = verify_sparse_artifact(art, against=other)
    assert "SC155" in report.codes() and not report.ok
    # and a structurally diverged recompile also fails on content
    other.syn_weight[0] += 1.0
    diverged = verify_sparse_artifact(art, against=other)
    assert "SC155" in diverged.codes() and "SC153" in diverged.codes()


def test_artifact_rules_all_error_severity():
    assert set(ARTIFACT_RULES) == {
        "SC150", "SC151", "SC152", "SC153", "SC154", "SC155",
        "SC160", "SC161", "SC162", "SC163",
    }
    assert all(sev is Severity.ERROR for _, sev, _ in ARTIFACT_RULES.values())


# --------------------------------------------------------------------------- #
# 3. SC16x: shard-router partition
# --------------------------------------------------------------------------- #


def _sharded(n=24, k=3, seed=4):
    return partition_graph(gnp_graph(n, 0.25, max_length=5, seed=seed), k)


@pytest.mark.parametrize("kind", ["sssp", "khop"])
def test_shard_partition_clean(kind):
    report = verify_shard_partition(_sharded(), kind=kind)
    assert report.ok, report.render()


def test_lint_network_accepts_sharded_graph():
    report = lint_network(_sharded(), subject="router")
    assert report.ok, report.render()


def test_shard_sc160_bad_tiling():
    s = _sharded()
    shards = list(s.shards)
    shards[1] = dataclasses.replace(shards[1], base=shards[1].base + 1)
    bad = dataclasses.replace(s, shards=tuple(shards))
    report = verify_shard_partition(bad)
    assert "SC160" in report.codes() and not report.ok


def test_shard_sc161_dropped_cross_edge():
    s = _sharded()
    victim = next(sh for sh in s.shards if sh.cross_dst.size)
    idx = victim.index
    shards = list(s.shards)
    shards[idx] = dataclasses.replace(
        victim,
        cross_src=victim.cross_src[1:],
        cross_dst=victim.cross_dst[1:],
        cross_w=victim.cross_w[1:],
    )
    bad = dataclasses.replace(s, shards=tuple(shards))
    report = verify_shard_partition(bad, check_networks=False)
    assert "SC161" in report.codes() and not report.ok


def test_shard_sc162_cross_edge_stays_local():
    s = _sharded()
    victim = next(sh for sh in s.shards if sh.cross_dst.size)
    idx = victim.index
    cd = victim.cross_dst.copy()
    cd[0] = victim.base  # target inside the shard's own range
    shards = list(s.shards)
    shards[idx] = dataclasses.replace(victim, cross_dst=cd)
    bad = dataclasses.replace(s, shards=tuple(shards))
    report = verify_shard_partition(bad, check_networks=False)
    assert "SC162" in report.codes() and not report.ok


def test_shard_sc163_subgraph_mismatch():
    s = _sharded()
    victim = s.shards[0]
    # swap shard 0's subgraph for a smaller one: compiled net disagrees
    smaller = gnp_graph(victim.n - 1, 0.3, max_length=5, seed=9)
    shards = list(s.shards)
    shards[0] = dataclasses.replace(victim, graph=smaller)
    bad = dataclasses.replace(s, shards=tuple(shards))
    report = verify_shard_partition(bad)
    assert not report.ok
    assert "SC163" in report.codes() or "SC160" in report.codes()
