"""Tests of gate-level SSSP with predecessor latching (Section 3 paths)."""

import numpy as np
import pytest

from repro.algorithms.sssp_paths_gate import sssp_with_predecessor_latching
from repro.errors import ValidationError
from repro.workloads import WeightedDigraph, gnp_graph, path_graph
from tests.conftest import ref_sssp


class TestDistances:
    @pytest.mark.parametrize("seed", range(4))
    def test_distances_match_networkx(self, seed):
        g = gnp_graph(10, 0.3, max_length=7, seed=seed, ensure_source_reaches=True)
        r = sssp_with_predecessor_latching(g, 0)
        assert np.array_equal(r.dist, ref_sssp(g, 0))

    def test_unit_lengths_scaled_internally(self):
        g = path_graph(5, max_length=1, seed=0)
        r = sssp_with_predecessor_latching(g, 0)
        assert r.dist.tolist() == [0, 1, 2, 3, 4]


class TestPredecessors:
    def test_path_graph_predecessors_exact(self):
        g = path_graph(6, max_length=4, seed=1)
        r = sssp_with_predecessor_latching(g, 0)
        assert r.pred.tolist() == [-1, 0, 1, 2, 3, 4]

    def test_source_and_unreached_marked(self):
        g = WeightedDigraph(4, [(0, 1, 3), (1, 2, 3)])
        r = sssp_with_predecessor_latching(g, 0)
        assert r.pred[0] == -1  # source
        assert r.pred[3] == -1  # unreached

    @pytest.mark.parametrize("seed", [2, 5, 9, 12])
    def test_latched_predecessors_valid_on_random_graphs(self, seed):
        # wide weight range keeps shortest paths unique, so latches are clean
        g = gnp_graph(9, 0.3, max_length=50, seed=seed, ensure_source_reaches=True)
        r = sssp_with_predecessor_latching(g, 0)
        for v in range(1, g.n):
            if r.dist[v] < 0:
                continue
            p = int(r.pred[v])
            assert p >= 0, f"vertex {v} unresolved"
            heads, lengths = g.out_edges(p)
            hit = [w for h, w in zip(heads.tolist(), lengths.tolist()) if h == v]
            assert hit, (v, p)
            assert r.dist[p] + min(hit) == r.dist[v]

    def test_path_walk_reaches_source(self):
        g = gnp_graph(9, 0.3, max_length=50, seed=5, ensure_source_reaches=True)
        r = sssp_with_predecessor_latching(g, 0)
        for v in range(g.n):
            if r.dist[v] < 0:
                continue
            path = r.path_to(v)
            assert path[0] == 0 and path[-1] == v
            total = 0
            for a, b in zip(path, path[1:]):
                heads, lengths = g.out_edges(a)
                ws = [w for h, w in zip(heads.tolist(), lengths.tolist()) if h == b]
                total += min(ws)
            assert total == r.dist[v]

    def test_unreachable_path_none(self):
        g = WeightedDigraph(3, [(0, 1, 2)])
        r = sssp_with_predecessor_latching(g, 0)
        assert r.path_to(2) is None

    def test_id_zero_predecessor_latches_cleanly(self):
        # predecessor 0 broadcasts no bits; the all-zero latch must decode
        # to vertex 0, not to "nothing"
        g = WeightedDigraph(3, [(0, 1, 5), (1, 2, 5)])
        r = sssp_with_predecessor_latching(g, 0)
        assert r.pred[1] == 0


class TestAccounting:
    def test_neuron_overhead_n_log_n(self):
        g = gnp_graph(12, 0.3, max_length=9, seed=3)
        r = sssp_with_predecessor_latching(g, 0)
        bits = r.cost.message_bits
        # relays + 3 groups (broadcast, capture, latch) of `bits` per vertex
        assert r.cost.neuron_count == g.n * (1 + 3 * bits)

    def test_validation(self):
        g = path_graph(3, seed=0)
        with pytest.raises(ValidationError):
            sssp_with_predecessor_latching(g, 9)
