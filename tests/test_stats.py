"""Tests of network statistics."""

import pytest

from repro.core import Network
from repro.core.stats import network_stats


def test_empty_network():
    stats = network_stats(Network())
    assert stats.neurons == 0 and stats.synapses == 0
    assert stats.max_fan_out == 0 and stats.min_delay == 0


def test_counts_and_ranges():
    net = Network()
    a = net.add_neuron(one_shot=True)
    b = net.add_neuron(tau=1.0)
    c = net.add_neuron(v_reset=2.0, v_threshold=1.0)  # pacemaker
    net.add_synapse(a, b, weight=2.0, delay=3)
    net.add_synapse(a, c, weight=-1.0, delay=1)
    net.add_synapse(b, b, weight=1.0, delay=2)  # self-loop
    stats = network_stats(net)
    assert stats.neurons == 3
    assert stats.synapses == 3
    assert stats.max_fan_out == 2
    assert stats.max_fan_in == 2  # b receives from a and itself
    assert stats.min_weight == -1.0 and stats.max_weight == 2.0
    assert stats.min_delay == 1 and stats.max_delay == 3
    assert stats.excitatory_synapses == 2
    assert stats.inhibitory_synapses == 1
    assert stats.self_loops == 1
    assert stats.one_shot_neurons == 1
    assert stats.integrator_neurons == 2  # a (tau=0) and c (tau=0)
    assert stats.pacemaker_neurons == 1


def test_summary_renders_all_sections():
    net = Network()
    a, b = net.add_neuron(), net.add_neuron()
    net.add_synapse(a, b)
    text = network_stats(net).summary()
    for key in ("neurons", "synapses", "fan-out", "weights", "delays", "pacemaker"):
        assert key in text


def test_accepts_compiled_network():
    net = Network()
    net.add_neuron()
    assert network_stats(net.compile()).neurons == 1


def test_single_neuron_no_synapses():
    net = Network()
    net.add_neuron(one_shot=True)
    stats = network_stats(net)
    assert stats.neurons == 1 and stats.synapses == 0
    assert stats.max_fan_out == 0 and stats.max_fan_in == 0
    assert stats.min_delay == 0 and stats.max_delay == 0
    assert stats.excitatory_synapses == 0 and stats.inhibitory_synapses == 0
    assert stats.self_loops == 0
    assert stats.one_shot_neurons == 1


def test_empty_network_summary_renders():
    text = network_stats(Network()).summary()
    assert "neurons" in text and "0" in text


def test_all_self_loops():
    net = Network()
    a = net.add_neuron()
    b = net.add_neuron()
    net.add_synapse(a, a, delay=2)
    net.add_synapse(b, b, delay=2)
    stats = network_stats(net)
    assert stats.self_loops == 2
    assert stats.max_fan_in == 1 and stats.max_fan_out == 1
