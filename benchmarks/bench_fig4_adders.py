"""Figure 4 / "Sum Circuits": the adder designs.

Three points of the size/depth/weight tradeoff, all measured here: the
Ramos–Bohorquez-style carry-lookahead adder (depth 2, O(lambda) neurons,
exponential weights), the Siu et al. style generate/propagate adder
(constant depth, O(lambda^2) neurons, unit weights), and the ripple adder
(depth O(lambda), O(lambda) neurons, unit weights).
"""

import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.circuits import (
    CircuitBuilder,
    carry_lookahead_adder,
    ripple_adder,
    run_circuit,
    siu_adder,
)

ADDERS = {
    "carry-lookahead": carry_lookahead_adder,
    "siu": siu_adder,
    "ripple": ripple_adder,
}


def build(kind, width):
    b = CircuitBuilder()
    xa = b.input_bits("a", width)
    xb = b.input_bits("b", width)
    b.output_bits("out", ADDERS[kind](b, xa, xb))
    return b


def max_weight(builder):
    net = builder.net.compile()
    return float(abs(net.syn_weight).max())


@whole_run
def test_fig4_tradeoff_table():
    print_header("Figure 4: adder size/depth/weight tradeoff")
    rows = []
    for width in (4, 8, 16):
        for kind in ADDERS:
            b = build(kind, width)
            rows.append((kind, width, b.size, b.depth, max_weight(b)))
    print_rows(["design", "lambda", "neurons", "depth", "max |weight|"], rows)

    cla_depths = {b.depth for b in (build("carry-lookahead", w) for w in (4, 8, 16))}
    assert len(cla_depths) == 1  # constant depth
    siu_depths = {b.depth for b in (build("siu", w) for w in (4, 8, 16))}
    assert len(siu_depths) == 1  # constant depth as well
    rip_depths = [build("ripple", w).depth for w in (4, 8, 16)]
    assert rip_depths[2] > rip_depths[1] > rip_depths[0]  # linear depth
    # the three-way weight/size tradeoff
    assert max_weight(build("carry-lookahead", 16)) >= 2**15  # exponential
    assert max_weight(build("siu", 16)) <= 2  # unit weights ...
    assert build("siu", 16).size > 2 * build("carry-lookahead", 16).size  # ... at O(l^2) size
    assert max_weight(build("ripple", 16)) <= 2


@pytest.mark.parametrize("kind", list(ADDERS))
def test_fig4_execution(benchmark, kind):
    b = build(kind, 10)
    out = benchmark(lambda: run_circuit(b, {"a": 777, "b": 333}))
    assert out["out"] == 1110


@whole_run
def test_fig4_pipelined_throughput():
    """Depth-2 lookahead sustains one addition per tick when pipelined."""
    from repro.circuits.runner import run_circuit_waves

    b = build("carry-lookahead", 6)
    waves = [{"a": i * 3 % 64, "b": i * 5 % 64} for i in range(10)]
    outs = run_circuit_waves(b, waves)
    for wave, out in zip(waves, outs):
        assert out["out"] == wave["a"] + wave["b"]
