"""Section 2.3's motivating example: matrix-vector products.

"The standard O(n^2) algorithm for computing a matrix-vector product with
an n x n matrix becomes O(n^3) if data-movement is taken into account in a
fashion similar to DISTANCE, while a neuromorphic implementation remains
an O(n^2) algorithm."

Conventional side: the row-major accumulation on the DISTANCE machine.
Neuromorphic side: the Definition-4 NGA (one round of ``A x`` over the
plus-times semiring on the complete bipartite message graph), whose cost
is dominated by the ``O(n^2)`` synapse loading.  The bench fits both
scaling exponents.
"""

import numpy as np
import pytest

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.distance_model import matvec_distance
from repro.nga import PLUS_TIMES, matrix_power_nga
from repro.workloads import WeightedDigraph


def nga_matvec_cost(n: int, seed: int) -> int:
    """Model cost of one neuromorphic A x round: loading + one round."""
    rng = np.random.default_rng(seed)
    A = rng.integers(1, 5, size=(n, n))
    # message graph: edge u -> v carries A[v][u]
    tails = np.repeat(np.arange(n), n)
    heads = np.tile(np.arange(n), n)
    g = WeightedDigraph.from_arrays(n, tails, heads, A.T.reshape(-1))
    res = matrix_power_nga(
        g, PLUS_TIMES, {i: int(v) for i, v in enumerate(rng.integers(1, 5, n))}, 1
    )
    # verify against numpy before charging anything
    x = np.array([res.history[0].get(i, 0) for i in range(n)], dtype=np.int64)
    got = np.array([res.history[1].get(i, 0) for i in range(n)], dtype=np.int64)
    assert np.array_equal(got, A @ x)
    return res.cost.total_time


@whole_run
def test_sec23_matvec_exponents():
    print_header("Section 2.3: mat-vec, DISTANCE vs neuromorphic")
    ns = [8, 16, 32]
    rows, conv_costs, neuro_costs = [], [], []
    rng = np.random.default_rng(0)
    for n in ns:
        A = rng.integers(1, 5, size=(n, n))
        x = rng.integers(1, 5, size=n)
        y, cost = matvec_distance(A, x, num_registers=4)
        assert np.array_equal(y, A @ x)
        neuro = nga_matvec_cost(n, seed=n)
        rows.append((n, cost, neuro))
        conv_costs.append(cost)
        neuro_costs.append(neuro)
    e_conv = fit_exponent(ns, conv_costs)
    e_neuro = fit_exponent(ns, neuro_costs)
    print_rows(["n", "DISTANCE movement", "neuromorphic cost"], rows)
    print(f"fitted: DISTANCE ~ n^{e_conv:.2f} (paper: 3), "
          f"neuromorphic ~ n^{e_neuro:.2f} (paper: 2)")
    assert e_conv > 2.5
    assert e_neuro < 2.5


def test_sec23_matvec_kernel(benchmark):
    rng = np.random.default_rng(1)
    n = 16
    A = rng.integers(1, 5, size=(n, n))
    x = rng.integers(1, 5, size=n)
    y, _cost = benchmark(lambda: matvec_distance(A, x))
    assert np.array_equal(y, A @ x)
