"""Theorem 6.1: any conventional algorithm reading an m-word input incurs
Omega(m^{3/2} / sqrt c) movement cost in the DISTANCE model.

Measures the movement cost of a straight input scan on the DISTANCE
machine across m and c sweeps, checks every measurement against the
proof's explicit constant, and fits the scaling exponent (~1.5 in m,
~-0.5 in c).
"""

import pytest

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.distance_model import read_input_distance, read_lower_bound_2d, read_lower_bound_3d
from repro.workloads import gnp_graph


def words_of(g):
    return 2 * g.m + g.n + 1  # heads + lengths + indptr


def test_thm61_measured_vs_bound(benchmark):
    print_header("Theorem 6.1: input-read movement cost vs lower bound (c=4)")
    rows, ms, costs = [], [], []
    for n in (15, 25, 40, 60):
        g = gnp_graph(n, 0.3, max_length=5, seed=n, ensure_source_reaches=True)
        measured = read_input_distance(g, num_registers=4)
        bound = read_lower_bound_2d(words_of(g), 4)
        rows.append((words_of(g), measured, round(bound, 1),
                     round(measured / bound, 2)))
        ms.append(words_of(g))
        costs.append(measured)
        assert measured >= bound
    print_rows(["input words", "measured movement", "Thm 6.1 bound", "ratio"], rows)
    exponent = fit_exponent(ms, costs)
    print(f"fitted movement ~ m^{exponent:.2f} (theory: 1.5)")
    assert 1.3 <= exponent <= 1.7

    g = gnp_graph(30, 0.3, max_length=5, seed=1, ensure_source_reaches=True)
    benchmark(lambda: read_input_distance(g, num_registers=4))


@whole_run
def test_thm61_register_count_dependence():
    """The 1/sqrt(c) factor: more registers help, but sublinearly."""
    g = gnp_graph(50, 0.3, max_length=5, seed=2, ensure_source_reaches=True)
    print_header("Theorem 6.1: movement vs register count")
    rows, cs, costs = [], [], []
    for c in (1, 4, 16, 64):
        measured = read_input_distance(g, num_registers=c, layout="scattered")
        bound = read_lower_bound_2d(words_of(g), c)
        rows.append((c, measured, round(bound, 1)))
        cs.append(c)
        costs.append(measured)
        assert measured >= bound
    print_rows(["registers c", "measured movement", "bound"], rows)
    exponent = fit_exponent(cs, costs)
    print(f"fitted movement ~ c^{exponent:.2f} (theory: -0.5)")
    assert -0.8 <= exponent <= -0.2


@whole_run
def test_thm61_3d_variant():
    """Three dimensions weaken the bound to Omega(m^{4/3}): measured 3D
    costs sit between the 3D bound and the 2D costs."""
    print_header("Theorem 6.1 (3D): m^{4/3} regime")
    rows = []
    for n in (20, 35, 50):
        g = gnp_graph(n, 0.3, max_length=5, seed=n + 7, ensure_source_reaches=True)
        d2 = read_input_distance(g, num_registers=4, dims=2)
        d3 = read_input_distance(g, num_registers=4, dims=3)
        b3 = read_lower_bound_3d(words_of(g), 4)
        rows.append((words_of(g), d2, d3, round(b3, 1)))
        assert b3 <= d3 <= d2
    print_rows(["input words", "2D measured", "3D measured", "3D bound"], rows)
