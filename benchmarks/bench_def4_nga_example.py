"""Definition 4's worked example: semiring matrix powers as an NGA.

Section 2.2: "we let each edge ij compute A_ij * m_i and each node j
compute the sum ... such an NGA computes A^r m_0"; with (min, +) this is
k-hop shortest paths, and the round accounting is R * (T_edge + T_node).
This bench runs the same graph through four semirings, checks each against
an independent reference, and verifies the timing law.
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.nga import BOOLEAN, MAX_PLUS, MIN_PLUS, PLUS_TIMES, matrix_power_nga
from repro.workloads import gnp_graph, layered_dag


@whole_run
def test_def4_semiring_sweep():
    g = gnp_graph(14, 0.25, max_length=5, seed=41, ensure_source_reaches=True)
    rounds = 4
    print_header(f"Definition 4 NGA: A^{rounds} m_0 over four semirings "
                 f"[n={g.n} m={g.m}]")
    rows = []
    # min-plus: k-hop distances (prefix-min over history)
    res_min = matrix_power_nga(g, MIN_PLUS, {0: 0}, rounds)
    reached = {v for h in res_min.history for v in h}
    rows.append(("min-plus", "k-hop distances", len(reached), res_min.rounds))
    # boolean: reachability within `rounds` hops
    res_bool = matrix_power_nga(g, BOOLEAN, {0: True}, rounds, edge_value="unit")
    reach_bool = {v for h in res_bool.history for v in h}
    rows.append(("boolean", "k-hop reachability", len(reach_bool), res_bool.rounds))
    assert reach_bool == reached  # both models agree on who is reachable
    # plus-times: walk counting
    res_count = matrix_power_nga(g, PLUS_TIMES, {0: 1}, rounds, edge_value="unit")
    walks = sum(res_count.history[rounds].values()) if len(res_count.history) > rounds else 0
    rows.append(("plus-times", f"walks of length {rounds}", walks, res_count.rounds))
    # verify against dense matrix power
    A = np.zeros((g.n, g.n))
    for u, v, _w in g.edges():
        A[v, u] += 1
    e0 = np.zeros(g.n)
    e0[0] = 1
    expected = np.linalg.matrix_power(A, rounds) @ e0
    assert walks == int(expected.sum())
    # max-plus on a DAG: critical path
    dag = layered_dag(4, 3, max_length=6, seed=2, density=1.0)
    res_max = matrix_power_nga(dag, MAX_PLUS, {0: 0}, 5)
    import networkx as nx

    want = nx.dag_longest_path_length(dag.to_networkx(), weight="weight")
    got = max(max(h.values()) for h in res_max.history if h)
    rows.append(("max-plus", "critical path (DAG)", got, res_max.rounds))
    assert got == want
    print_rows(["semiring", "computes", "result", "rounds"], rows)


@whole_run
def test_def4_timing_law():
    """Total execution time is R * (T_edge + T_node), Definition 4."""
    g = gnp_graph(12, 0.3, max_length=4, seed=42, ensure_source_reaches=True)
    print_header("Definition 4 timing: R * (T_edge + T_node)")
    rows = []
    for t_edge, t_node in ((1, 1), (3, 5), (10, 2)):
        res = matrix_power_nga(
            g, MIN_PLUS, {0: 0}, 3, t_edge=t_edge, t_node=t_node
        )
        rows.append(
            (t_edge, t_node, res.rounds, res.cost.simulated_ticks)
        )
        assert res.cost.simulated_ticks == res.rounds * (t_edge + t_node)
    print_rows(["T_edge", "T_node", "rounds R", "total ticks"], rows)
