"""Dynamic-graph benchmark CLI: the ``BENCH_dynamic.json`` artifact.

Runs :func:`repro.dynamic.bench.run_dynamic_bench` — the incremental
recompile vs full-rebuild microbenchmark plus a mixed read/write stream
replay through a live :class:`~repro.service.server.QueryServer` — and
writes the document to ``--out``.

Usage::

    PYTHONPATH=src python benchmarks/bench_dynamic.py --quick --ops 500 \
        --out BENCH_dynamic.json

Exits nonzero if the stream replay reports any errors or if incremental
verification failed (every timed incremental network is checked
array-identical to its from-scratch rebuild before its timing counts).
The CI ``dynamic-smoke`` job additionally asserts the headline reweight
speedup (>= 5x at n >= 1000) from the artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized instances")
    parser.add_argument("--ops", type=int, default=500, help="stream length")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_dynamic.json")
    args = parser.parse_args(argv)

    from repro.dynamic.bench import run_dynamic_bench

    t0 = time.perf_counter()
    doc = run_dynamic_bench(quick=args.quick, n_ops=args.ops, seed=args.seed)
    doc["metadata"] = {"timestamp": time.time(), "wall_s": round(time.perf_counter() - t0, 3)}
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    for rec in doc["recompile"]:
        print(
            f"n={rec['n']:5d} m={rec['m']:6d}  reweight {rec['reweight']['speedup']}x  "
            f"add_edge {rec['add_edge']['speedup']}x  "
            f"(verified {rec['verified_networks']} networks)",
            file=sys.stderr,
        )
    stream = doc["stream"]
    print(
        f"stream: {stream['ops']} ops, {stream['errors']} errors, "
        f"read p99 {stream['reads']['p99_s'] * 1e3:.2f} ms, "
        f"write p99 {stream['writes']['p99_s'] * 1e3:.2f} ms",
        file=sys.stderr,
    )
    print(f"wrote {args.out}", file=sys.stderr)
    if stream["errors"]:
        print("FAIL: stream replay reported errors", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
