"""Table 2: the max-circuit tradeoff.

| name        | size (neurons) | runtime (depth) |
| brute force | O(d^2)         | 3 (constant)    |
| wired-OR    | O(d*lambda)    | O(lambda)       |

Measures actual neuron counts and depths over a (d, lambda) grid, fits the
scaling exponents, and times the LIF-engine execution of each circuit.
"""

import pytest

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.circuits import (
    CircuitBuilder,
    brute_force_max,
    run_circuit,
    wired_or_max,
)


def build(kind, d, lam):
    b = CircuitBuilder()
    ins = [b.input_bits(f"x{i}", lam) for i in range(d)]
    res = (brute_force_max if kind == "brute" else wired_or_max)(b, ins)
    b.output_bits("out", res.out_bits)
    return b


@whole_run
def test_table2_size_and_depth_grid():
    print_header("Table 2: max-circuit size/depth over (d, lambda)")
    rows = []
    for d in (2, 4, 8, 16):
        for lam in (2, 4, 8):
            bb = build("brute", d, lam)
            wb = build("wired", d, lam)
            rows.append((d, lam, bb.size, bb.depth, wb.size, wb.depth))
    print_rows(
        ["d", "lambda", "brute size", "brute depth", "wired size", "wired depth"],
        rows,
    )
    # brute force: constant depth, regardless of d and lambda
    brute_depths = {r[3] for r in rows}
    assert len(brute_depths) == 1
    # wired-OR: depth independent of d, linear in lambda
    by_lam = {}
    for d, lam, _, _, _, wd in rows:
        by_lam.setdefault(lam, set()).add(wd)
    assert all(len(v) == 1 for v in by_lam.values())
    depths = sorted((lam, v.pop()) for lam, v in by_lam.items())
    assert depths[2][1] - depths[1][1] == 2 * (depths[1][1] - depths[0][1])


@whole_run
def test_table2_scaling_exponents():
    lam = 4
    ds = [8, 16, 32, 64]  # asymptotic regime: the d^2 comparator layer dominates
    brute_sizes = [build("brute", d, lam).size for d in ds]
    wired_sizes = [build("wired", d, lam).size for d in ds]
    e_brute = fit_exponent(ds, brute_sizes)
    e_wired = fit_exponent(ds, wired_sizes)
    print_header("Table 2: size scaling in d (lambda = 4)")
    print_rows(
        ["circuit", "sizes", "fitted exponent", "paper"],
        [
            ("brute force", brute_sizes, round(e_brute, 2), "O(d^2)"),
            ("wired-OR", wired_sizes, round(e_wired, 2), "O(d lambda)"),
        ],
    )
    assert e_brute > 1.5  # quadratic-ish
    assert e_wired < 1.3  # linear-ish


@pytest.mark.parametrize("kind", ["brute", "wired"])
def test_table2_execution_wall_clock(benchmark, kind):
    b = build(kind, 8, 6)
    inputs = {f"x{i}": (i * 11) % 64 for i in range(8)}
    result = benchmark(lambda: run_circuit(b, inputs))
    assert result["out"] == max(inputs.values())
