"""Table 3 / Appendix A: platform statistics and the energy comparison.

Prints the registry (the paper's table) and converts one SSSP run into
per-platform energy: spike count x pJ/spike for the neuromorphic systems
versus RAM-operation count charged against the CPU's clock and TDP.
Asserts the appendix's qualitative verdicts: neuromorphic platforms land
orders of magnitude below the CPU, and the ASIC platforms below SpiNNaker's
ARM-based design.
"""

import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.algorithms import spiking_sssp_pseudo
from repro.baselines import dijkstra
from repro.hardware import PLATFORMS, chips_required, energy_comparison
from repro.workloads import gnp_graph


@whole_run
def test_table3_registry():
    print_header("Table 3: platform registry")
    rows = []
    for name, p in PLATFORMS.items():
        rows.append(
            (
                name,
                p.organization,
                p.design,
                f"{p.process_nm}nm",
                p.neurons_per_chip if p.neurons_per_chip else "N/A",
                p.pj_per_spike_mid if p.pj_per_spike_mid else "N/A",
                p.power_watts_mid,
            )
        )
    print_rows(
        ["platform", "org", "design", "process", "neurons/chip", "pJ/spike", "W"],
        rows,
    )
    neuromorphic = [p for p in PLATFORMS.values() if not p.is_cpu]
    cpu = PLATFORMS["Core i7-9700T"]
    # "Power consumption is considerably less for the neuromorphic platforms"
    for p in neuromorphic:
        assert p.power_watts_mid < cpu.power_watts_mid / 10


def test_table3_energy_per_run(benchmark):
    g = gnp_graph(200, 0.05, max_length=10, seed=17, ensure_source_reaches=True)
    neuro = benchmark(lambda: spiking_sssp_pseudo(g, 0))
    _, ops = dijkstra(g, 0)
    table = energy_comparison(neuro.cost, ops)
    print_header(
        f"Energy per SSSP run  [n={g.n} m={g.m} spikes={neuro.cost.spike_count} "
        f"conventional ops={ops.total}]"
    )
    rows = [
        (name, vals["joules"] if vals["joules"] is not None else "N/A", vals["chips"])
        for name, vals in table.items()
    ]
    print_rows(["platform", "joules", "chips"], rows)

    cpu_j = table["Core i7-9700T"]["joules"]
    assert table["Loihi"]["joules"] < cpu_j / 100
    assert table["TrueNorth"]["joules"] < cpu_j / 100
    # the ARM-based SpiNNaker 1 pays ~300x more per spike than the ASICs
    assert table["SpiNNaker 1"]["joules"] > 100 * table["Loihi"]["joules"]


@whole_run
def test_table3_chip_capacity():
    """Neuron footprints of growing crossbars vs chip capacities."""
    print_header("Crossbar neuron footprint vs chips required")
    rows = []
    for n in (50, 200, 800):
        neurons = 2 * n * n  # crossbar H_n
        row = [f"H_{n} ({neurons:,} neurons)"]
        for pname in ("TrueNorth", "Loihi", "SpiNNaker 2"):
            row.append(chips_required(neurons, PLATFORMS[pname]))
        rows.append(tuple(row))
    print_rows(["network", "TrueNorth", "Loihi", "SpiNNaker 2"], rows)
    assert chips_required(2 * 800 * 800, PLATFORMS["Loihi"]) > 1
    assert chips_required(2 * 50 * 50, PLATFORMS["TrueNorth"]) == 1
