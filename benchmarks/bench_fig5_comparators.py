"""Figure 5 / Theorem 5.2: single-gate comparators and the brute-force max.

One threshold gate with place-value weights decides ``x >= y`` (the ``Eq``
bias realized by the run line); ``M_x`` gates conjoin a row of
comparisons, breaking ties toward the smallest index.  The bench
regenerates the size/depth profile and the tie-break behavior, and times
the constant-depth max against the O(lambda)-depth wired-OR design.
"""

import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.circuits import (
    CircuitBuilder,
    brute_force_max,
    comparator_geq,
    run_circuit,
    wired_or_max,
)


@whole_run
def test_fig5_comparator_is_one_gate():
    print_header("Figure 5A: comparator resource profile")
    rows = []
    for lam in (2, 8, 32):
        b = CircuitBuilder()
        xs = b.input_bits("x", lam)
        ys = b.input_bits("y", lam)
        b.run_line()  # the Eq bias wire is shared, not per-comparator
        before = b.size
        sig = comparator_geq(b, xs, ys)
        rows.append((lam, b.size - before, sig.offset, 2.0 ** (lam - 1)))
        assert b.size - before == 1
        assert sig.offset == 1
    print_rows(["lambda", "gates", "depth", "max weight"], rows)


@whole_run
def test_fig5_tie_break_smallest_index():
    """M_x fires for the smallest index among tied maxima (Figure 5B)."""
    b = CircuitBuilder()
    ins = [b.input_bits(f"x{i}", 4) for i in range(4)]
    res = brute_force_max(b, ins)
    b.output_bits("out", res.out_bits)
    for i, w in enumerate(res.winners):
        b.output_bits(f"m{i}", [w], aligned=False)
    r = run_circuit(b, {"x0": 3, "x1": 9, "x2": 9, "x3": 9})
    assert r["out"] == 9
    assert (r["m0"], r["m1"], r["m2"], r["m3"]) == (0, 1, 0, 0)


def test_fig5_depth_advantage_vs_wired_or(benchmark):
    """The Table-2 tradeoff from the circuit side: at large lambda, the
    brute-force circuit answers in constant ticks where wired-OR takes
    O(lambda)."""
    lam, d = 12, 4

    def build(fn):
        b = CircuitBuilder()
        ins = [b.input_bits(f"x{i}", lam) for i in range(d)]
        res = fn(b, ins)
        b.output_bits("out", res.out_bits)
        return b

    brute = build(brute_force_max)
    wired = build(wired_or_max)
    print_header("Figure 5: constant-depth vs bit-serial max (lambda = 12)")
    print_rows(
        ["design", "neurons", "depth (ticks)"],
        [("brute force", brute.size, brute.depth), ("wired-OR", wired.size, wired.depth)],
    )
    assert brute.depth < wired.depth / 3
    assert wired.size < brute.size or d < lam  # size tradeoff reverses with d

    vals = {f"x{i}": (997 * i) % 4096 for i in range(d)}
    out = benchmark(lambda: run_circuit(brute, vals))
    assert out["out"] == max(vals.values())
