"""Figure 3 / Theorem 5.1: the bit-by-bit (wired-OR) max circuit.

Measures size ``O(d * lambda)`` and depth ``O(lambda)`` over sweeps of
both parameters, exercises the knock-out semantics the figure describes
(including ties), and times execution on the LIF engine.
"""

import pytest

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.circuits import CircuitBuilder, run_circuit, wired_or_max


def build(d, lam):
    b = CircuitBuilder()
    ins = [b.input_bits(f"x{i}", lam) for i in range(d)]
    res = wired_or_max(b, ins)
    b.output_bits("out", res.out_bits)
    return b


@whole_run
def test_fig3_size_depth_sweep():
    print_header("Figure 3: wired-OR max size/depth")
    rows = []
    for d in (2, 4, 8):
        for lam in (2, 4, 8):
            b = build(d, lam)
            rows.append((d, lam, b.size, b.depth))
    print_rows(["d", "lambda", "neurons", "depth"], rows)
    # depth depends only on lambda
    by_lam = {}
    for d, lam, _s, dep in rows:
        by_lam.setdefault(lam, set()).add(dep)
    assert all(len(v) == 1 for v in by_lam.values())
    # size ~ d * lambda
    sizes_in_d = [build(d, 4).size for d in (4, 8, 16, 32)]
    assert fit_exponent([4, 8, 16, 32], sizes_in_d) < 1.2
    sizes_in_lam = [build(4, lam).size for lam in (4, 8, 16, 32)]
    assert fit_exponent([4, 8, 16, 32], sizes_in_lam) < 1.2


@whole_run
def test_fig3_knockout_semantics():
    """Most-significant-bit-first elimination, the figure's walk-through."""
    b = CircuitBuilder()
    ins = [b.input_bits(f"x{i}", 3) for i in range(4)]
    res = wired_or_max(b, ins)
    b.output_bits("out", res.out_bits)
    for i, w in enumerate(res.winners):
        b.output_bits(f"a{i}", [w], aligned=False)
    # values 5,3,5,1: inputs 0 and 2 survive (tied maxima), 1 and 3 knocked out
    r = run_circuit(b, {"x0": 5, "x1": 3, "x2": 5, "x3": 1})
    assert r["out"] == 5
    assert (r["a0"], r["a1"], r["a2"], r["a3"]) == (1, 0, 1, 0)


def test_fig3_execution(benchmark):
    b = build(8, 8)
    vals = {f"x{i}": (37 * i) % 256 for i in range(8)}
    out = benchmark(lambda: run_circuit(b, vals))
    assert out["out"] == max(vals.values())
