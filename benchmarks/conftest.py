"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it measures the
model quantities (simulated ticks, neurons, spikes, movement cost, RAM
ops), prints rows in the paper's layout, and asserts the *shape* of the
claim — who wins, roughly by what factor, where the crossover falls.
pytest-benchmark additionally records simulator wall-clock for the kernel
of each experiment.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
import pytest


def whole_run(fn):
    """Time an entire zero-argument experiment body with pytest-benchmark.

    Shape-checking benches measure model quantities (ticks, neurons,
    movement cost) rather than wall-clock, but wrapping them keeps every
    experiment visible under ``--benchmark-only`` and records how long the
    regeneration itself takes.
    """

    def wrapper(benchmark):
        benchmark.pedantic(fn, rounds=1, iterations=1)

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    wrapper.__module__ = fn.__module__
    return wrapper


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_rows(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    for idx, row in enumerate(cells):
        print("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        if idx == 0:
            print("  ".join("-" * w for w in widths))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    if isinstance(value, (int, np.integer)):
        return f"{int(value):,}"
    return str(value)


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x (the scaling exponent)."""
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)
