"""Scalability of the event-level simulators (production-viability check).

Not a paper artifact: this bench establishes that the message-level
runners scale to real workloads, so the Table-1 sweeps are not toy-bound.
Event-driven SSSP wall-clock should grow near-linearly in m (the
O((n + m) log n) heap bound), independent of edge lengths.
"""

import time

import numpy as np

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.algorithms import (
    all_pairs_shortest_paths,
    spiking_khop_pseudo,
    spiking_sssp_pseudo,
)
from repro.core import default_build_cache
from repro.workloads import gnp_graph


def test_scalability_event_sssp_kernel(benchmark):
    g = gnp_graph(2000, 0.004, max_length=1000, seed=70, ensure_source_reaches=True)
    result = benchmark(lambda: spiking_sssp_pseudo(g, 0))
    assert (result.dist >= 0).all()


@whole_run
def test_scalability_sweep():
    print_header("Scalability: event-level SSSP and k-hop wall-clock")
    rows, ms, secs = [], [], []
    for n in (500, 1000, 2000, 4000):
        g = gnp_graph(n, 8.0 / n, max_length=100, seed=n,
                      ensure_source_reaches=True)
        t0 = time.perf_counter()
        r = spiking_sssp_pseudo(g, 0)
        sssp_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        rk = spiking_khop_pseudo(g, 0, 6)
        khop_s = time.perf_counter() - t0
        rows.append((n, g.m, f"{sssp_s * 1e3:.0f}ms", f"{khop_s * 1e3:.0f}ms",
                     int(r.dist.max()), rk.cost.spike_count))
        ms.append(g.m)
        secs.append(sssp_s)
        assert (r.dist >= 0).all()
    print_rows(["n", "m", "SSSP", "6-hop", "L", "k-hop spikes"], rows)
    exponent = fit_exponent(ms, secs)
    print(f"fitted SSSP wall-clock ~ m^{exponent:.2f} (near-linear expected)")
    assert exponent < 1.6  # no superquadratic blowup


@whole_run
def test_scalability_all_pairs_batched():
    print_header("All-pairs SSSP: batched dense engine vs per-source loop")
    rows, speedups = [], []
    for n in (100, 200, 300):
        g = gnp_graph(n, 6.0 / n, max_length=10, seed=n,
                      ensure_source_reaches=True)
        default_build_cache.clear()  # charge the sequential loop its build too
        t0 = time.perf_counter()
        seq_matrix, seq_cost = all_pairs_shortest_paths(g, batched=False)
        seq_s = time.perf_counter() - t0
        default_build_cache.clear()
        t0 = time.perf_counter()
        bat_matrix, bat_cost = all_pairs_shortest_paths(g)
        bat_s = time.perf_counter() - t0
        assert np.array_equal(seq_matrix, bat_matrix)
        assert seq_cost.simulated_ticks == bat_cost.simulated_ticks
        assert seq_cost.spike_count == bat_cost.spike_count
        speedup = seq_s / bat_s if bat_s else float("inf")
        speedups.append(speedup)
        rows.append((n, g.m, f"{seq_s * 1e3:.0f}ms", f"{bat_s * 1e3:.0f}ms",
                     f"{speedup:.1f}x"))
    print_rows(["n", "m", "sequential", "batched", "speedup"], rows)
    assert max(speedups) >= 2.0  # the batched engine must pay off
