"""Scalability of the event-level simulators (production-viability check).

Not a paper artifact: this bench establishes that the message-level
runners scale to real workloads, so the Table-1 sweeps are not toy-bound.
Event-driven SSSP wall-clock should grow near-linearly in m (the
O((n + m) log n) heap bound), independent of edge lengths.  The sparse
CSR core extends the reachable scale to n = 10^5 neurons, where the dense
engine's O(n) per-tick scan dominates; the sweep records wall-clock *and*
tracemalloc peak memory per engine.
"""

import time
import tracemalloc

import numpy as np

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.algorithms import (
    all_pairs_shortest_paths,
    spiking_khop_pseudo,
    spiking_sssp_pseudo,
    sssp_network,
)
from repro.core import default_build_cache
from repro.workloads import gnp_graph, path_graph


def test_scalability_event_sssp_kernel(benchmark):
    g = gnp_graph(2000, 0.004, max_length=1000, seed=70, ensure_source_reaches=True)
    result = benchmark(lambda: spiking_sssp_pseudo(g, 0))
    assert (result.dist >= 0).all()


@whole_run
def test_scalability_sweep():
    print_header("Scalability: event-level SSSP and k-hop wall-clock")
    rows, ms, secs = [], [], []
    for n in (500, 1000, 2000, 4000):
        g = gnp_graph(n, 8.0 / n, max_length=100, seed=n,
                      ensure_source_reaches=True)
        t0 = time.perf_counter()
        r = spiking_sssp_pseudo(g, 0)
        sssp_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        rk = spiking_khop_pseudo(g, 0, 6)
        khop_s = time.perf_counter() - t0
        rows.append((n, g.m, f"{sssp_s * 1e3:.0f}ms", f"{khop_s * 1e3:.0f}ms",
                     int(r.dist.max()), rk.cost.spike_count))
        ms.append(g.m)
        secs.append(sssp_s)
        assert (r.dist >= 0).all()
    print_rows(["n", "m", "SSSP", "6-hop", "L", "k-hop spikes"], rows)
    exponent = fit_exponent(ms, secs)
    print(f"fitted SSSP wall-clock ~ m^{exponent:.2f} (near-linear expected)")
    assert exponent < 1.6  # no superquadratic blowup


@whole_run
def test_scalability_all_pairs_batched():
    print_header("All-pairs SSSP: batched dense engine vs per-source loop")
    rows, speedups = [], []
    for n in (100, 200, 300):
        g = gnp_graph(n, 6.0 / n, max_length=10, seed=n,
                      ensure_source_reaches=True)
        default_build_cache.clear()  # charge the sequential loop its build too
        t0 = time.perf_counter()
        seq_matrix, seq_cost = all_pairs_shortest_paths(g, batched=False)
        seq_s = time.perf_counter() - t0
        default_build_cache.clear()
        t0 = time.perf_counter()
        bat_matrix, bat_cost = all_pairs_shortest_paths(g)
        bat_s = time.perf_counter() - t0
        assert np.array_equal(seq_matrix, bat_matrix)
        assert seq_cost.simulated_ticks == bat_cost.simulated_ticks
        assert seq_cost.spike_count == bat_cost.spike_count
        speedup = seq_s / bat_s if bat_s else float("inf")
        speedups.append(speedup)
        rows.append((n, g.m, f"{seq_s * 1e3:.0f}ms", f"{bat_s * 1e3:.0f}ms",
                     f"{speedup:.1f}x"))
    print_rows(["n", "m", "sequential", "batched", "speedup"], rows)
    assert max(speedups) >= 2.0  # the batched engine must pay off


@whole_run
def test_scalability_sparse_engine_to_1e5():
    """SSSP on the sparse CSR core vs the dense engine up to n = 10^5.

    Two workload families probing different things:

    * the extremal path graph (L large, m = n - 1): the run is temporally
      sparse — the horizon T is ~n * U / 2 ticks but only ~n of them carry
      activity, so the dense engine's O(n) scan of every quiet tick is
      pure waste.  This is where the sparse core wins big (gated >= 3x).
    * a degree-6 G(n, p) at n = 10^5: small-world, so all 10^5 spikes
      land within a few hundred ticks — temporally *dense* activity where
      the two engines are expected to tie.  The point here is scale: a
      dense (n, n) weight matrix would be 80 GB while the CSR artifact
      stays O(n + m), distances still agree exactly, and sparse must not
      regress (gated >= 0.5x).

    Peak memory per engine comes from separate untimed runs: tracemalloc
    tracing slows the sparse engine's many small per-tick allocations
    ~10x, which would corrupt the wall-clock comparison.
    """
    print_header("Sparse CSR core: SSSP wall-clock and peak memory vs dense")
    workloads = [
        ("path", path_graph(10_000, max_length=10, seed=17), 3.0),
        ("gnp", gnp_graph(100_000, 6.0 / 100_000, max_length=100, seed=17,
                          ensure_source_reaches=True), 0.5),
    ]
    rows = []
    for family, g, gate in workloads:
        sssp_network(g)  # shared structure-cached build: both engines reuse it
        walls, peaks, dists = {}, {}, {}
        for engine in ("dense", "sparse"):
            t0 = time.perf_counter()
            r = spiking_sssp_pseudo(g, 0, engine=engine)
            walls[engine] = time.perf_counter() - t0
            dists[engine] = r.dist
        assert np.array_equal(dists["dense"], dists["sparse"])
        for engine in ("dense", "sparse"):  # memory probes, untimed
            tracemalloc.start()
            spiking_sssp_pseudo(g, 0, engine=engine)
            _, peaks[engine] = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        speedup = walls["dense"] / walls["sparse"]
        # path: sparse must pay off big; gnp@1e5: must complete and not regress
        assert speedup >= gate, f"{family}: {speedup:.2f}x < {gate}x"
        rows.append((
            family, g.n, g.m,
            f"{walls['dense']:.2f}s", f"{walls['sparse']:.2f}s",
            f"{speedup:.1f}x",
            f"{peaks['dense'] / 1e6:.0f}MB", f"{peaks['sparse'] / 1e6:.0f}MB",
        ))
    print_rows(
        ["family", "n", "m", "dense", "sparse", "speedup",
         "dense peak", "sparse peak"],
        rows,
    )
