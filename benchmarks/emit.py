"""Headless benchmark runner emitting machine-readable telemetry.

Runs a fixed suite of representative workloads — the Section-3 SSSP
network on both engines, the polynomial and approximate k-hop solvers,
the Definition-4 min-plus matvec NGA, and a wired-OR max circuit — each
under its own :class:`~repro.telemetry.metrics.MetricsRegistry`, and
writes one ``BENCH_telemetry.json`` document with run metadata and
per-bench wall time, model quantities (neurons, synapses, spikes,
simulated ticks), telemetry counters, and tracemalloc peak memory.

Usage::

    PYTHONPATH=src python benchmarks/emit.py --quick --out BENCH_telemetry.json

``--quick`` shrinks every instance for CI smoke runs; omit it for the
full sizes.  The schema is documented in ``docs/telemetry.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import tracemalloc
from typing import Callable, Dict, List, Tuple

import numpy as np

SCHEMA = "repro.telemetry.bench/v1"


def _bench_sssp_dense(quick: bool) -> Dict[str, object]:
    from repro.algorithms import spiking_sssp_pseudo
    from repro.workloads import gnp_graph

    n = 300 if quick else 2000
    g = gnp_graph(n, 6.0 / n, max_length=10, seed=7, ensure_source_reaches=True)
    res = spiking_sssp_pseudo(g, 0, engine="dense")
    return _model_quantities(res.cost)


def _bench_sssp_event(quick: bool) -> Dict[str, object]:
    from repro.algorithms import spiking_sssp_pseudo
    from repro.workloads import gnp_graph

    n = 300 if quick else 2000
    g = gnp_graph(n, 6.0 / n, max_length=10, seed=7, ensure_source_reaches=True)
    res = spiking_sssp_pseudo(g, 0, engine="event")
    return _model_quantities(res.cost)


def _bench_khop_ttl(quick: bool) -> Dict[str, object]:
    from repro.algorithms import spiking_khop_pseudo
    from repro.workloads import gnp_graph

    n = 150 if quick else 800
    g = gnp_graph(n, 8.0 / n, max_length=8, seed=11, ensure_source_reaches=True)
    res = spiking_khop_pseudo(g, 0, 4)
    return _model_quantities(res.cost)


def _bench_sssp_poly(quick: bool) -> Dict[str, object]:
    from repro.algorithms import spiking_sssp_poly
    from repro.workloads import gnp_graph

    n = 80 if quick else 300
    g = gnp_graph(n, 8.0 / n, max_length=20, seed=3, ensure_source_reaches=True)
    res = spiking_sssp_poly(g, 0)
    return _model_quantities(res.cost)


def _bench_khop_approx(quick: bool) -> Dict[str, object]:
    from repro.algorithms import spiking_khop_approx
    from repro.workloads import gnp_graph

    n = 60 if quick else 250
    g = gnp_graph(n, 8.0 / n, max_length=12, seed=5, ensure_source_reaches=True)
    res = spiking_khop_approx(g, 0, 3)
    return _model_quantities(res.cost)


def _bench_matvec_nga(quick: bool) -> Dict[str, object]:
    from repro.nga.matvec import matrix_power_nga
    from repro.nga.semiring import MIN_PLUS
    from repro.workloads import gnp_graph

    n = 60 if quick else 250
    g = gnp_graph(n, 8.0 / n, max_length=10, seed=9, ensure_source_reaches=True)
    res = matrix_power_nga(g, MIN_PLUS, {0: 0}, 4)
    return _model_quantities(res.cost)


def _bench_all_pairs_batched(quick: bool) -> Dict[str, object]:
    """All-pairs SSSP: the batched dense engine vs the per-source loop.

    Reports both wall clocks and their ratio — the headline speedup of the
    batched simulation engine (acceptance target: >= 5x at n >= 200).
    """
    from repro.algorithms import all_pairs_shortest_paths
    from repro.core import default_build_cache
    from repro.workloads import gnp_graph

    n = 200 if quick else 400
    g = gnp_graph(n, 6.0 / n, max_length=10, seed=13, ensure_source_reaches=True)
    default_build_cache.clear()  # both modes pay their own build
    t0 = time.perf_counter()
    seq_matrix, seq_cost = all_pairs_shortest_paths(g, batched=False)
    seq_s = time.perf_counter() - t0
    default_build_cache.clear()
    t0 = time.perf_counter()
    matrix, cost = all_pairs_shortest_paths(g)
    bat_s = time.perf_counter() - t0
    assert np.array_equal(matrix, seq_matrix)
    assert (cost.simulated_ticks, cost.spike_count) == (
        seq_cost.simulated_ticks,
        seq_cost.spike_count,
    )
    out = _model_quantities(cost)
    out["sources"] = int(cost.extras["sources"])
    out["messages"] = int(cost.extras["messages"])
    out["sequential_wall_s"] = round(seq_s, 6)
    out["batched_wall_s"] = round(bat_s, 6)
    out["speedup_vs_sequential"] = round(seq_s / bat_s, 3) if bat_s else float("inf")
    return out


def _bench_sssp_sparse_large(quick: bool) -> Dict[str, object]:
    """SSSP on the sparse CSR core vs the dense engine at scale.

    Reports both wall clocks and their ratio — the headline speedup of the
    sparse simulation core (acceptance target: >= 5x at n >= 10^4).  Both
    modes use the extremal path graph (L large, m = n - 1: a long
    temporally sparse run where the dense per-tick scan is pure waste) at
    n = 10^4 quick / n = 2 * 10^4 full.  Temporally *dense* workloads
    (e.g. small-world G(n, p), where every tick carries activity) are not
    where sparse wins wall-clock; the n = 10^5 scale demonstration on such
    a graph lives in ``bench_scalability.py``.
    """
    from repro.algorithms import spiking_sssp_pseudo, sssp_network
    from repro.workloads import path_graph

    g = path_graph(10_000 if quick else 20_000, max_length=10, seed=21)
    sssp_network(g)  # shared structure-cached build: both engines reuse it
    t0 = time.perf_counter()
    dense = spiking_sssp_pseudo(g, 0, engine="dense")
    dense_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    res = spiking_sssp_pseudo(g, 0, engine="sparse")
    sparse_s = time.perf_counter() - t0
    assert np.array_equal(res.dist, dense.dist)
    # memory probe on a separate untimed run: the sparse engine makes many
    # small per-tick allocations, so tracemalloc tracing slows it ~10x and
    # would corrupt the wall-clock comparison above (hence traced = False)
    tracemalloc.start()
    spiking_sssp_pseudo(g, 0, engine="sparse")
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    out = _model_quantities(res.cost)
    out["peak_mem_bytes"] = int(peak)
    out["dense_wall_s"] = round(dense_s, 6)
    out["sparse_wall_s"] = round(sparse_s, 6)
    out["speedup_vs_dense"] = (
        round(dense_s / sparse_s, 3) if sparse_s else float("inf")
    )
    return out


_bench_sssp_sparse_large.traced = False  # type: ignore[attr-defined]


def _bench_circuit_max(quick: bool) -> Dict[str, object]:
    from repro.circuits.builder import CircuitBuilder
    from repro.circuits.max_circuits import wired_or_max
    from repro.circuits.runner import run_circuit
    from repro.core.stats import network_stats

    count, width = (4, 4) if quick else (8, 8)
    builder = CircuitBuilder()
    groups = [builder.input_bits(f"x{i}", width) for i in range(count)]
    res = wired_or_max(builder, groups)
    builder.output_bits("max", res.out_bits)
    rng = np.random.default_rng(0)
    values = {f"x{i}": int(v) for i, v in enumerate(rng.integers(0, 2**width, count))}
    out = run_circuit(builder, values)
    assert out["max"] == max(values.values())
    stats = network_stats(builder.net)
    return {"neurons": stats.neurons, "synapses": stats.synapses}


BENCHES: List[Tuple[str, Callable[[bool], Dict[str, object]]]] = [
    ("sssp_dense", _bench_sssp_dense),
    ("sssp_event", _bench_sssp_event),
    ("khop_ttl", _bench_khop_ttl),
    ("sssp_poly", _bench_sssp_poly),
    ("khop_approx", _bench_khop_approx),
    ("matvec_nga", _bench_matvec_nga),
    ("all_pairs_batched", _bench_all_pairs_batched),
    ("sssp_sparse_large", _bench_sssp_sparse_large),
    ("circuit_max", _bench_circuit_max),
]


def _model_quantities(cost) -> Dict[str, object]:
    return {
        "algorithm": cost.algorithm,
        "neurons": cost.neuron_count,
        "synapses": cost.synapse_count,
        "spikes": cost.spike_count,
        "simulated_ticks": cost.simulated_ticks,
        "loading_ticks": cost.loading_ticks,
        "total_time": cost.total_time,
    }


def run_suite(quick: bool, *, names: List[str] | None = None) -> Dict[str, object]:
    """Run the bench suite; returns the BENCH_telemetry document."""
    from repro.telemetry.metrics import MetricsRegistry, use_registry

    selected = [(n, f) for n, f in BENCHES if names is None or n in names]
    records = []
    for name, fn in selected:
        registry = MetricsRegistry(name)
        # benches with traced = False time engine comparisons that
        # allocation tracing would distort; they self-report their peak
        traced = getattr(fn, "traced", True)
        if traced:
            tracemalloc.start()
        t0 = time.perf_counter()
        with use_registry(registry):
            model = fn(quick)
        wall = time.perf_counter() - t0
        if traced:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = int(model.pop("peak_mem_bytes", 0))
        snap = registry.snapshot()
        records.append(
            {
                "name": name,
                "wall_s": round(wall, 6),
                "peak_mem_bytes": int(peak),
                "model": model,
                "counters": snap["counters"],
            }
        )
        print(
            f"{name:12s}  {wall * 1e3:9.2f} ms  peak {peak / 1e6:7.2f} MB  "
            f"spikes {model.get('spikes', '-')}",
            file=sys.stderr,
        )
    return {
        "schema": SCHEMA,
        "metadata": {
            "timestamp": time.time(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": quick,
        },
        "benches": records,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized instances")
    parser.add_argument("--out", default="BENCH_telemetry.json")
    parser.add_argument(
        "--bench",
        action="append",
        default=None,
        choices=[n for n, _ in BENCHES],
        help="run only this bench (repeatable; default: all)",
    )
    parser.add_argument(
        "--dynamic-out",
        default="BENCH_dynamic.json",
        help="where the dynamic-graph bench document goes (full runs only)",
    )
    args = parser.parse_args(argv)
    doc = run_suite(args.quick, names=args.bench)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {len(doc['benches'])} bench records to {args.out}", file=sys.stderr)
    if args.bench is None:
        # the dynamic suite rides along on unfiltered runs only, so
        # `--bench circuit_max`-style single-bench invocations stay cheap
        from repro.dynamic.bench import run_dynamic_bench

        dyn = run_dynamic_bench(quick=args.quick)
        dyn["metadata"] = {"timestamp": time.time()}
        with open(args.dynamic_out, "w", encoding="utf-8") as fh:
            json.dump(dyn, fh, indent=2)
            fh.write("\n")
        print(
            f"wrote dynamic bench (reweight speedup "
            f"{dyn['headline_speedup']}x) to {args.dynamic_out}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
