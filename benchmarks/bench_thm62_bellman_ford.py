"""Theorem 6.2: the k-hop Bellman–Ford schedule incurs
Omega(k * m^{3/2} / sqrt c) movement cost in the DISTANCE model.

Measures the instrumented Bellman–Ford's movement over k and m sweeps,
checks the proof's constant, and verifies the linear-in-k and
superlinear-in-m shape.
"""

import pytest

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.distance_model import bellman_ford_khop_distance, bellman_ford_lower_bound
from repro.workloads import gnp_graph

REGISTERS = 4


def test_thm62_k_sweep(benchmark):
    g = gnp_graph(25, 0.3, max_length=5, seed=9, ensure_source_reaches=True)
    print_header(f"Theorem 6.2: Bellman-Ford movement vs k  [m={g.m} c={REGISTERS}]")
    rows, ks, costs = [], [], []
    for k in (1, 2, 4, 8):
        _, cost = bellman_ford_khop_distance(g, 0, k, num_registers=REGISTERS)
        bound = bellman_ford_lower_bound(g.m, k, REGISTERS)
        rows.append((k, cost, round(bound, 1)))
        ks.append(k)
        costs.append(cost)
        assert cost >= bound
    print_rows(["k", "measured movement", "Thm 6.2 bound"], rows)
    exponent = fit_exponent(ks, costs)
    print(f"fitted movement ~ k^{exponent:.2f} (theory: 1.0)")
    assert 0.85 <= exponent <= 1.15

    benchmark(lambda: bellman_ford_khop_distance(g, 0, 2, num_registers=REGISTERS))


@whole_run
def test_thm62_m_sweep():
    k = 3
    print_header(f"Theorem 6.2: Bellman-Ford movement vs m  [k={k}]")
    rows, ms, costs = [], [], []
    for n in (15, 25, 40):
        g = gnp_graph(n, 0.35, max_length=4, seed=n + 3, ensure_source_reaches=True)
        _, cost = bellman_ford_khop_distance(g, 0, k, num_registers=REGISTERS)
        bound = bellman_ford_lower_bound(g.m, k, REGISTERS)
        rows.append((g.m, cost, round(bound, 1)))
        ms.append(g.m)
        costs.append(cost)
        assert cost >= bound
    print_rows(["m", "measured movement", "bound"], rows)
    exponent = fit_exponent(ms, costs)
    print(f"fitted movement ~ m^{exponent:.2f} (theory: 1.5)")
    assert exponent >= 1.25
