"""Network-serving benchmark CLI: the netbench ``BENCH_serving.json`` rows.

Boots a real socket server in-process (no separate daemon to manage),
drives the seeded mixed workload over TCP with
:func:`repro.service.net.bench.run_net_loadgen`, runs the thread-pool vs
process-pool vs sharded comparison of
:func:`repro.service.net.bench.run_pool_comparison`, and writes one
``repro.serving.netbench/v1`` document to ``--out``.

Usage::

    PYTHONPATH=src python benchmarks/bench_net_serving.py --requests 200 \
        --out BENCH_serving.json

Exits nonzero on any wire error, lost response, or equality mismatch —
the socket hop and the pool tiers must not change a single distance.
The CI ``net-serve-smoke`` job exercises the same paths against a real
subprocess server (including an injected worker-process kill); this CLI
is the local, single-command equivalent.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading
import time
from typing import Dict, List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--depth", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--process-workers", type=int, default=2)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument("--out", default="BENCH_serving.json")
    args = parser.parse_args(argv)

    from repro.service import QueryServer
    from repro.service.net import (
        NET_BENCH_SCHEMA,
        NetServer,
        ProcessWorkerPool,
        run_net_loadgen,
        run_pool_comparison,
    )
    from repro.workloads import gnp_graph, grid_graph

    graphs = {
        "grid": grid_graph(10, 10, max_length=7, seed=2),
        "gnp": gnp_graph(96, 0.05, max_length=9, seed=1),
    }
    pool = ProcessWorkerPool(workers=args.process_workers)
    server = QueryServer(workers=2, max_batch=16, linger_s=0.002, process_pool=pool)
    for gid, g in graphs.items():
        if args.shards > 1:
            server.register_sharded_graph(gid, g, min(args.shards, g.n))
        else:
            server.register_graph(gid, g)
    server.start()

    box: Dict[str, object] = {}
    started = threading.Event()

    def runner() -> None:
        async def main_loop() -> None:
            net = NetServer(server, host="127.0.0.1", port=0)
            await net.start()
            box["net"], box["loop"] = net, asyncio.get_running_loop()
            started.set()
            await net.run(install_signal_handlers=False)

        asyncio.run(main_loop())

    thread = threading.Thread(target=runner, name="bench-net-loop", daemon=True)
    thread.start()
    if not started.wait(60):
        print("FAIL: socket server did not start", file=sys.stderr)
        return 1
    net = box["net"]
    loop = box["loop"]
    t0 = time.time()
    try:
        net_report = run_net_loadgen(
            "127.0.0.1",
            net.port,  # type: ignore[attr-defined]
            graphs,
            n_requests=args.requests,
            connections=args.connections,
            depth=args.depth,
            seed=args.seed,
            verify=not args.no_verify,
        )
    finally:
        while thread.is_alive():
            loop.call_soon_threadsafe(net.request_shutdown)  # type: ignore[attr-defined]
            thread.join(0.1)
        pool.close()

    pools_report = run_pool_comparison(verify=not args.no_verify)

    doc = {
        "schema": NET_BENCH_SCHEMA,
        "generated_unix": round(t0, 3),
        "net": net_report,
        "pools": pools_report,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"net: {net_report['ok']}/{net_report['requests']} ok, "
        f"{net_report['coalesced_answers']} coalesced, "
        f"p50 {net_report['latency_p50_s']}s"
    )
    rows = pools_report["rows"]
    print(
        f"pools: thread {rows['thread_pool']['throughput_rps']} rps, "
        f"process {rows['process_pool']['throughput_rps']} rps "
        f"({rows['process_pool']['speedup_vs_thread']}x), "
        f"sharded {rows['sharded']['throughput_rps']} rps "
        f"on {pools_report['cpu_count']} cpus"
    )
    print(f"wrote {args.out}")

    failed = (
        net_report["errors"] != 0
        or net_report["lost"] != 0
        or net_report["equality"]["mismatches"] != 0
        or pools_report["equality"]["mismatches"] != 0
    )
    if failed:
        print("FAIL: wire serving diverged from solo runs", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
