"""Figure 7 / Appendix A: aggregating many-core chips into systems.

"Current neuromorphic architectures aggregate many-core chips into
boards."  This bench maps growing crossbar networks onto Loihi-style
cores and chips and measures how spike traffic splits across the routing
tiers (on-core / cross-core / cross-chip) under a locality-aware placement
versus a locality-oblivious one — the placement question that determines
whether the cheap on-core routing the platforms are built around actually
gets used.
"""

import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.core import simulate
from repro.embedding import embed_graph
from repro.hardware import PlatformSpec
from repro.hardware.mapping import (
    greedy_locality_mapping,
    mapping_traffic,
    round_robin_mapping,
)
from repro.workloads import gnp_graph

# a scaled-down Loihi so small test networks span several cores/chips
MINI = PlatformSpec(
    name="mini-loihi",
    organization="bench",
    design="ASIC",
    process_nm=14,
    clock_hz=None,
    neurons_per_core=64,
    cores_per_chip=4,
)


@whole_run
def test_fig7_traffic_tiers_vs_size():
    print_header("Figure 7: crossbar spike traffic by routing tier (mini chips)")
    rows = []
    for n in (8, 12, 16):
        g = gnp_graph(n, 0.4, max_length=3, seed=n, ensure_source_reaches=True)
        emb = embed_graph(g)
        result = simulate(
            emb.net,
            [emb.diagonal_neuron(0)],
            engine="event",
            max_steps=emb.scale * (n - 1) * 3 + 1,
            watch=[emb.diagonal_neuron(v) for v in range(n)],
        )
        greedy = mapping_traffic(emb.net, greedy_locality_mapping(emb.net, MINI), result)
        naive = mapping_traffic(emb.net, round_robin_mapping(emb.net, MINI), result)
        rows.append(
            (
                n,
                2 * n * n,
                f"{greedy.intra_core}/{greedy.inter_core}/{greedy.inter_chip}",
                f"{naive.intra_core}/{naive.inter_core}/{naive.inter_chip}",
            )
        )
        assert greedy.total == naive.total  # same spikes, different routing
        # locality keeps at least as much traffic on-core
        assert greedy.intra_core >= naive.intra_core
    print_rows(
        ["n", "crossbar neurons", "greedy intra/inter/chip", "round-robin"],
        rows,
    )


@whole_run
def test_fig7_chip_counts_grow_with_network():
    print_header("Figure 7: chips needed as the crossbar grows (mini chips)")
    rows = []
    prev_chips = 0
    for n in (8, 16, 24):
        g = gnp_graph(n, 0.4, max_length=3, seed=n + 1, ensure_source_reaches=True)
        emb = embed_graph(g)
        mapping = greedy_locality_mapping(emb.net, MINI)
        rows.append((n, emb.net.n_neurons, mapping.num_cores, mapping.num_chips))
        assert mapping.num_chips >= prev_chips
        prev_chips = mapping.num_chips
    print_rows(["n", "neurons", "cores", "chips"], rows)
    assert prev_chips > 1  # the largest instance spans several chips
