"""Ablation: dense vs event-driven engine on delay-encoded workloads.

The pseudopolynomial algorithms simulate a horizon of T = O(L) ticks with
only O(n) spikes; the event engine's wall-clock should therefore be
roughly independent of edge lengths while the dense engine's grows
linearly with them.  Both must agree bit-exactly.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.algorithms import spiking_sssp_pseudo
from repro.workloads import gnp_graph


@pytest.mark.parametrize("engine", ["event", "dense"])
def test_ablation_engine_wall_clock(benchmark, engine):
    g = gnp_graph(40, 0.2, max_length=200, seed=55, ensure_source_reaches=True)
    result = benchmark(lambda: spiking_sssp_pseudo(g, 0, engine=engine))
    assert (result.dist >= 0).all()


@whole_run
def test_ablation_engines_agree_and_scale():
    import time

    print_header("Ablation: engine wall-clock vs edge-length scale (same graph)")
    g = gnp_graph(40, 0.2, max_length=10, seed=56, ensure_source_reaches=True)
    rows = []
    times = {"dense": [], "event": []}
    for scale in (1, 20, 400):
        gs = g.scaled(scale)
        row = [scale]
        dists = {}
        for engine in ("dense", "event"):
            t0 = time.perf_counter()
            r = spiking_sssp_pseudo(gs, 0, engine=engine)
            elapsed = time.perf_counter() - t0
            times[engine].append(elapsed)
            dists[engine] = r.dist
            row.append(f"{elapsed * 1e3:.1f}ms")
        rows.append(tuple(row))
        assert np.array_equal(dists["dense"], dists["event"])
    print_rows(["length scale", "dense", "event"], rows)
    # dense pays per simulated tick; event pays per spike.  At 400x lengths
    # the dense engine must have slowed much more than the event engine.
    dense_growth = times["dense"][-1] / times["dense"][0]
    event_growth = times["event"][-1] / times["event"][0]
    print(f"dense slowed {dense_growth:.1f}x, event {event_growth:.1f}x")
    assert dense_growth > 4 * event_growth
