"""Table 1 (top half): complexities with data-movement costs.

Conventional side: Manhattan movement cost measured on the DISTANCE
machine (Definition 5), checked against the conservative Theorem 6.1/6.2
lower bounds.  Neuromorphic side: simulated ticks charged with the
Section 4.4 crossbar-embedding factor (``O(n)`` on the spiking portion).

The headline claim — a polynomial-factor advantage once data movement is
priced in (e.g. ``Omega(m^{1/2}/log n)`` for k-hop SSSP) — appears here as
the conventional/neuromorphic ratio growing with problem size.
"""

import pytest

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.algorithms import spiking_khop_pseudo, spiking_sssp_pseudo
from repro.analysis import ComparisonRow, render_table
from repro.distance_model import (
    bellman_ford_khop_distance,
    bellman_ford_lower_bound,
    dijkstra_distance,
    read_lower_bound_2d,
)
from repro.embedding import embedded_sssp
from repro.workloads import gnp_graph

REGISTERS = 4


def test_table1_top_rows(benchmark):
    g = gnp_graph(30, 0.25, max_length=6, seed=11, ensure_source_reaches=True)
    k = 4

    _, conv_sssp_cost = dijkstra_distance(g, 0, num_registers=REGISTERS)
    _, conv_khop_cost = bellman_ford_khop_distance(g, 0, k, num_registers=REGISTERS)
    neuro_sssp = spiking_sssp_pseudo(g, 0)
    neuro_khop = spiking_khop_pseudo(g, 0, k)
    # charge the crossbar embedding factor on the spiking portion
    neuro_sssp_charged = neuro_sssp.cost.with_embedding(g.n)
    neuro_khop_charged = neuro_khop.cost.with_embedding(g.n)

    lb_sssp = read_lower_bound_2d(g.m, REGISTERS)
    lb_khop = bellman_ford_lower_bound(g.m, k, REGISTERS)

    rows = [
        ComparisonRow(
            "SSSP (pseudopoly, DISTANCE)",
            conv_sssp_cost,
            neuro_sssp_charged.total_time,
            lower_bound=lb_sssp,
            note="neuro = O(nL + m)",
        ),
        ComparisonRow(
            "k-hop SSSP (pseudopoly, DISTANCE)",
            conv_khop_cost,
            neuro_khop_charged.total_time,
            lower_bound=lb_khop,
            note="neuro = O((nL + m) log k)",
        ),
    ]
    print_header(
        "Table 1 (top): with data-movement costs  "
        f"[n={g.n} m={g.m} U={g.max_length()} k={k} c={REGISTERS}]"
    )
    print(render_table(rows))

    # measured conventional movement respects its lower bound
    assert conv_sssp_cost >= lb_sssp
    assert conv_khop_cost >= lb_khop
    # on this short-path workload the neuromorphic side wins both rows
    for row in rows:
        assert row.neuromorphic < row.conventional

    benchmark(lambda: dijkstra_distance(g, 0, num_registers=REGISTERS))


@whole_run
def test_table1_top_advantage_grows_with_m():
    """The polynomial-factor gap: conventional/neuromorphic ratio must grow
    with edge count (the paper's Omega(m^{1/2}/polylog) advantage)."""
    k = 3
    ratios = []
    sizes = []
    for n in (12, 20, 32, 48):
        g = gnp_graph(n, 0.5, max_length=3, seed=n, ensure_source_reaches=True)
        _, conv = bellman_ford_khop_distance(g, 0, k, num_registers=REGISTERS)
        neuro = spiking_khop_pseudo(g, 0, k).cost.with_embedding(g.n).total_time
        ratios.append(conv / neuro)
        sizes.append(g.m)
    print_header("Table 1 (top): advantage ratio vs m (k-hop pseudopoly)")
    print_rows(["m", "ratio conv/neuro"], list(zip(sizes, ratios)))
    assert ratios[-1] > ratios[0]  # the advantage widens
    exponent = fit_exponent(sizes, ratios)
    print(f"fitted ratio ~ m^{exponent:.2f} (paper predicts ~ m^0.5/polylog)")
    assert exponent > 0.2


@whole_run
def test_table1_top_crossbar_vs_distance_model():
    """Same fair-comparison story with the embedding actually *simulated*
    (not just charged): crossbar ticks vs DISTANCE movement cost."""
    g = gnp_graph(14, 0.4, max_length=4, seed=5, ensure_source_reaches=True)
    crossbar = embedded_sssp(g, 0)
    _, conv = dijkstra_distance(g, 0, num_registers=REGISTERS)
    print_header("Crossbar-simulated SSSP vs DISTANCE Dijkstra")
    print_rows(
        ["metric", "crossbar (simulated ticks)", "DISTANCE (movement)"],
        [("cost", crossbar.cost.total_time, conv)],
    )
    assert crossbar.cost.total_time < conv
