"""Ablation: how much of the with-data-movement cost is the embedding?

Runs the same SSSP instance three ways — arbitrary-topology SNN (the
O(1)-data-movement assumption), crossbar-embedded SNN (simulated), and
analytically charged embedding — separating the algorithm's intrinsic
cost from the topology penalty that divides Table 1 into its two halves.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.algorithms import spiking_sssp_pseudo
from repro.embedding import embedded_sssp
from repro.embedding.embed import embedding_scale
from repro.workloads import gnp_graph


def test_ablation_embedding_decomposition(benchmark):
    print_header("Ablation: native vs charged vs simulated crossbar")
    rows = []
    for n in (8, 14, 20):
        g = gnp_graph(n, 0.4, max_length=4, seed=n, ensure_source_reaches=True)
        native = spiking_sssp_pseudo(g, 0)
        charged = native.cost.with_embedding(g.n)
        simulated = embedded_sssp(g, 0)
        assert np.array_equal(native.dist, simulated.dist)
        rows.append(
            (
                n,
                native.cost.simulated_ticks,
                charged.embedding_factor * charged.simulated_ticks,
                simulated.cost.simulated_ticks,
                embedding_scale(g),
            )
        )
    print_rows(
        ["n", "native ticks", "charged ticks (xn)", "simulated crossbar ticks",
         "scale used"],
        rows,
    )
    for _n, native_t, charged_t, simulated_t, _s in rows:
        # the analytic O(n) charge brackets the simulated crossbar cost
        assert native_t <= simulated_t
        assert simulated_t <= 4 * charged_t

    g = gnp_graph(12, 0.4, max_length=4, seed=3, ensure_source_reaches=True)
    benchmark(lambda: embedded_sssp(g, 0))


@whole_run
def test_ablation_embedding_spike_overhead():
    """The crossbar also multiplies spike traffic (relay vertices fire)."""
    g = gnp_graph(12, 0.4, max_length=4, seed=5, ensure_source_reaches=True)
    native = spiking_sssp_pseudo(g, 0)
    simulated = embedded_sssp(g, 0)
    print_header("Ablation: spike counts, native vs crossbar")
    print_rows(
        ["variant", "neurons", "spikes"],
        [
            ("native", native.cost.neuron_count, native.cost.spike_count),
            ("crossbar", simulated.cost.neuron_count, simulated.cost.spike_count),
        ],
    )
    assert simulated.cost.spike_count > native.cost.spike_count
    assert simulated.cost.neuron_count == 2 * g.n * g.n
