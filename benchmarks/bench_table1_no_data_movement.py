"""Table 1 (bottom half): complexities ignoring data-movement costs.

Regenerates the four problem rows by measuring, on one workload family:

* conventional cost — instrumented RAM operation counts (Dijkstra /
  k-hop Bellman–Ford);
* neuromorphic cost — ``CostReport.total_time`` in simulated ticks
  (spiking time + loading), per Theorems 4.1–4.4;

and checks the table's verdicts: SSSP-polynomial "never" wins; k-hop
polynomial wins exactly when ``log(nU) = o(k)`` (crossover located on a
``k`` sweep); the pseudopolynomial rows win when ``L`` is small relative
to the table's conditions.
"""

import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.algorithms import (
    spiking_khop_poly,
    spiking_khop_pseudo,
    spiking_sssp_poly,
    spiking_sssp_pseudo,
)
from repro.analysis import ComparisonRow, find_crossover, render_table
from repro.analysis.complexity import conventional_khop_time, neuro_khop_poly_time
from repro.baselines import bellman_ford_khop, dijkstra
from repro.workloads import gnp_graph, path_graph


def test_table1_bottom_rows(benchmark):
    g = gnp_graph(60, 0.15, max_length=8, seed=42, ensure_source_reaches=True)
    k = 6
    target = g.n - 1

    conv_sssp_dist, conv_sssp_ops = dijkstra(g, 0)
    conv_khop_dist, conv_khop_ops = bellman_ford_khop(g, 0, k)
    neuro_sssp_poly = spiking_sssp_poly(g, 0, target=target)
    neuro_khop_poly_res = spiking_khop_poly(g, 0, k)
    neuro_sssp_pseudo = spiking_sssp_pseudo(g, 0)
    neuro_khop_pseudo_res = spiking_khop_pseudo(g, 0, k)

    rows = [
        ComparisonRow(
            "SSSP (polynomial)",
            conv_sssp_ops.total,
            neuro_sssp_poly.cost.total_time,
            note="paper: never better",
        ),
        ComparisonRow(
            "k-hop SSSP (polynomial)",
            conv_khop_ops.total,
            neuro_khop_poly_res.cost.total_time,
            note="better when log(nU)=o(k)",
        ),
        ComparisonRow(
            "SSSP (pseudopoly)",
            conv_sssp_ops.total,
            neuro_sssp_pseudo.cost.total_time,
            note="better when m,L=o(n log n), L=o(m)",
        ),
        ComparisonRow(
            "k-hop SSSP (pseudopoly)",
            conv_khop_ops.total,
            neuro_khop_pseudo_res.cost.total_time,
            note="better when L=o(km/log k)",
        ),
    ]
    print_header("Table 1 (bottom): ignoring data-movement costs  "
                 f"[n={g.n} m={g.m} U={g.max_length()} k={k}]")
    print(render_table(rows))

    # Paper verdict: polynomial SSSP never beats Dijkstra in this regime
    # (the m log(nU) circuit loading dominates m + n log n).
    assert rows[0].neuromorphic >= rows[0].conventional

    # Pseudopolynomial SSSP wins on short-path workloads: L ~ max dist is
    # small next to Dijkstra's ops here.
    assert rows[2].neuromorphic < rows[2].conventional

    benchmark(lambda: spiking_khop_pseudo(g, 0, k))


@whole_run
def test_table1_bottom_khop_crossover_in_k():
    """The k-hop polynomial row's advantage condition log(nU) = o(k):
    sweeping k must reveal a crossover where neuromorphic starts winning.

    Wide edge lengths (large U) make the message width log(nU) — and with
    it the neuromorphic loading term — expensive at small k, handing the
    small-k regime to Bellman–Ford exactly as the side condition predicts.
    """
    g = gnp_graph(40, 0.4, max_length=2**25, seed=7, ensure_source_reaches=True)
    ks = list(range(1, 61))

    def conv(k):
        _, ops = bellman_ford_khop(g, 0, k)
        return ops.total

    def neuro(k):
        return spiking_khop_poly(g, 0, k).cost.total_time

    cross = find_crossover(conv, neuro, ks)
    print_header("Table 1 crossover sweep: k-hop polynomial, varying k")
    rows = [(k, conv(k), neuro(k)) for k in (1, 2, 4, 8, 16, 32)]
    print_rows(["k", "conventional ops", "neuromorphic ticks"], rows)
    print(f"measured crossover at k = {cross}")
    assert cross is not None and cross > 1  # conventional wins at k = 1
    # the unit-constant formulas place the crossover within an order of
    # magnitude of the measured one
    predicted = find_crossover(
        lambda k: conventional_khop_time(k, g.m),
        lambda k: neuro_khop_poly_time(g.n, g.m, g.max_length(), k, data_movement=False),
        range(1, 1000),
    )
    assert predicted is not None
    assert 0.1 <= predicted / cross <= 10.0


@whole_run
def test_table1_bottom_pseudo_L_dependence():
    """Pseudopolynomial rows lose when L blows up (long weighted paths)."""
    short = gnp_graph(50, 0.2, max_length=2, seed=3, ensure_source_reaches=True)
    long = path_graph(50, max_length=10**4, seed=3)

    r_short = spiking_sssp_pseudo(short, 0)
    c_short, ops_short = dijkstra(short, 0)
    r_long = spiking_sssp_pseudo(long, 0)
    c_long, ops_long = dijkstra(long, 0)

    print_header("Table 1 (bottom): pseudopolynomial L-dependence")
    print_rows(
        ["workload", "L", "conventional ops", "neuromorphic ticks"],
        [
            ("sparse short-path", int(r_short.dist.max()), ops_short.total,
             r_short.cost.total_time),
            ("heavy path (L huge)", int(r_long.dist.max()), ops_long.total,
             r_long.cost.total_time),
        ],
    )
    assert r_short.cost.total_time < ops_short.total
    assert r_long.cost.total_time > ops_long.total
