"""Theorem 7.2: the (1 + o(1))-approximate k-hop SSSP.

Regenerates the section's three claims on real runs: the approximation
quality (within 1 + eps of the exact k-hop distances), the running-time
profile within polylog factors of the exact polynomial algorithm, and —
the main payoff — the neuron-count advantage:
``O(n log(k U log n))`` versus the exact ``O(m log(nU))``.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.algorithms import spiking_khop_approx, spiking_khop_poly, spiking_khop_pseudo
from repro.baselines import bellman_ford_khop
from repro.workloads import gnp_graph


def test_thm72_quality(benchmark):
    g = gnp_graph(60, 0.15, max_length=10, seed=23, ensure_source_reaches=True)
    k = 6
    exact, _ = bellman_ford_khop(g, 0, k)
    approx = benchmark(lambda: spiking_khop_approx(g, 0, k))
    eps = approx.cost.extras["epsilon"]
    errors = []
    for v in range(g.n):
        if exact[v] > 0 and approx.dist[v] >= 0:
            errors.append(approx.dist[v] / exact[v])
    print_header(
        f"Theorem 7.2: approximation quality  [eps={eps:.3f}, "
        f"{approx.cost.extras['scales']:.0f} scales]"
    )
    print_rows(
        ["vertices", "max ratio", "mean ratio", "guarantee"],
        [(len(errors), round(max(errors), 4), round(float(np.mean(errors)), 4),
          round(1 + eps, 4))],
    )
    assert max(errors) <= 1 + eps + 1e-9


@whole_run
def test_thm72_neuron_advantage():
    """Neurons: approx O(n log(kU log n)) vs exact O(m log(nU)) — the gap
    widens with density."""
    k = 5
    print_header("Theorem 7.2: neuron counts, approximate vs exact")
    rows = []
    for p in (0.1, 0.3, 0.6):
        g = gnp_graph(50, p, max_length=9, seed=int(p * 100),
                      ensure_source_reaches=True)
        approx = spiking_khop_approx(g, 0, k)
        exact = spiking_khop_pseudo(g, 0, k)
        rows.append(
            (g.m, approx.cost.neuron_count, exact.cost.neuron_count,
             round(exact.cost.neuron_count / approx.cost.neuron_count, 2))
        )
    print_rows(["m", "approx neurons", "exact neurons", "exact/approx"], rows)
    # advantage grows with m (approx is m-independent)
    assert rows[-1][3] > rows[0][3]
    assert rows[-1][3] > 1.0


@whole_run
def test_thm72_time_within_polylog_of_exact():
    g = gnp_graph(40, 0.25, max_length=8, seed=31, ensure_source_reaches=True)
    k = 5
    approx = spiking_khop_approx(g, 0, k)
    exact_poly = spiking_khop_poly(g, 0, k)
    ratio = approx.cost.total_time / max(1, exact_poly.cost.total_time)
    print_header("Theorem 7.2: time vs the exact polynomial algorithm")
    print_rows(
        ["approx total", "exact-poly total", "ratio"],
        [(approx.cost.total_time, exact_poly.cost.total_time, round(ratio, 2))],
    )
    # within polylog factors: generous envelope log^2(n k U)
    import math

    envelope = math.log2(g.n * k * g.max_length()) ** 2
    assert ratio <= envelope
