"""Figure 2 / Section 4.4: the crossbar H_n and the embedding cost.

Regenerates the structural facts of the figure (vertex/edge counts of
H_n), verifies the embedding's delay identity on real runs, and measures
the embedding cost: the spiking portion slows down by Theta(n) — the
multiplicative factor separating the two halves of Table 1.
"""

import numpy as np
import pytest

from benchmarks.conftest import fit_exponent, print_header, print_rows, whole_run
from repro.algorithms import spiking_sssp_pseudo
from repro.embedding import Crossbar, EmbeddingSession, embed_graph, embedded_sssp
from repro.workloads import gnp_graph


@whole_run
def test_fig2_structure():
    print_header("Figure 2: crossbar H_n structure")
    rows = []
    for n in (3, 8, 16, 32):
        xbar = Crossbar(n)
        edges = sum(1 for _ in xbar.structural_edges())
        rows.append((n, xbar.num_vertices, edges, n * (n - 1)))
    print_rows(["n", "vertices (2n^2)", "structural edges", "type-2 slots"], rows)
    for n, verts, edges, slots in rows:
        assert verts == 2 * n * n
        assert edges == n + 2 * n * (n - 1)


def test_fig2_embedding_cost_theta_n(benchmark):
    """Native vs crossbar simulated time: the gap grows linearly in n."""
    print_header("Embedding cost: native vs crossbar SSSP (unit-ish lengths)")
    ns, factors = [], []
    rows = []
    for n in (6, 10, 16, 24):
        g = gnp_graph(n, 0.5, max_length=3, seed=n, ensure_source_reaches=True)
        native = spiking_sssp_pseudo(g, 0)
        crossbar = embedded_sssp(g, 0)
        assert np.array_equal(native.dist, crossbar.dist)
        factor = crossbar.cost.simulated_ticks / max(1, native.cost.simulated_ticks)
        rows.append(
            (n, native.cost.simulated_ticks, crossbar.cost.simulated_ticks,
             round(factor, 1), crossbar.cost.neuron_count)
        )
        ns.append(n)
        factors.append(factor)
    print_rows(
        ["n", "native ticks", "crossbar ticks", "slowdown", "crossbar neurons"],
        rows,
    )
    exponent = fit_exponent(ns, factors)
    print(f"fitted slowdown ~ n^{exponent:.2f} (paper: Theta(n))")
    assert 0.6 <= exponent <= 1.4

    g = gnp_graph(12, 0.5, max_length=3, seed=99, ensure_source_reaches=True)
    benchmark(lambda: embedded_sssp(g, 0))


@whole_run
def test_fig2_reembedding_sequence_cost():
    """Section 4.4: embedding p graphs one after another costs O(sum m_i)
    delay reprogrammings — a constant-factor slowdown, not O(n^2) each."""
    session = EmbeddingSession(n=12)
    total_m = 0
    for seed in range(5):
        g = gnp_graph(12, 0.3, max_length=3, seed=seed)
        session.embed(g)
        total_m += session.current.programmed_edges
    print_header("Re-embedding 5 graphs: charged reprogramming operations")
    print_rows(
        ["sum of m_i", "charged ops", "crossbar slots (n^2)"],
        [(total_m, session.reprogram_ops, 12 * 12)],
    )
    assert session.reprogram_ops <= 2 * total_m


@whole_run
def test_fig2_embedding_is_m_not_n_squared():
    """Programming a sparse graph touches m Type-2 delays, not Theta(n^2)."""
    g = gnp_graph(40, 0.02, max_length=3, seed=4)
    emb = embed_graph(g)
    assert emb.programmed_edges <= g.m
    assert emb.programmed_edges < 40 * 39 // 4
