"""Section 4.4's Remark: embedding the polynomial algorithm's lambda-bit
messages and arithmetic circuits into the crossbar, "with logarithmic
overhead".

Measures the three quantities the remark is about: per-hop tick cost
(x = O(log nU), the overhead), neuron footprint (O(n^2 lambda)), and the
redundant time/value agreement — plus correctness against Dijkstra.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.embedding.poly_crossbar import (
    compile_poly_sssp_on_crossbar,
    run_poly_crossbar,
)
from repro.workloads import gnp_graph, path_graph


def test_remark44_end_to_end(benchmark):
    g = gnp_graph(4, 0.5, max_length=3, seed=0, ensure_source_reaches=True)
    compiled = compile_poly_sssp_on_crossbar(g, 0)
    result = benchmark(lambda: run_poly_crossbar(compiled))
    print_header("Remark 4.4: value-carrying SSSP on the crossbar")
    print_rows(
        ["n", "lambda", "hop ticks x", "neurons", "spikes", "sim ticks"],
        [
            (
                g.n,
                compiled.bits,
                compiled.x,
                compiled.net.n_neurons,
                result.cost.spike_count,
                result.cost.simulated_ticks,
            )
        ],
    )
    assert (result.dist >= 0).all()


@whole_run
def test_remark44_logarithmic_overhead_sweep():
    """The hop cost tracks the message width log(nU), not the graph size."""
    print_header("Remark 4.4: per-hop overhead x vs message width")
    rows = []
    for U in (2, 2**4, 2**8):
        g = path_graph(4, max_length=U, seed=0)
        compiled = compile_poly_sssp_on_crossbar(g, 0)
        rows.append((U, compiled.bits, compiled.x, compiled.net.n_neurons))
    print_rows(["U", "lambda", "hop ticks x", "neurons"], rows)
    lams = [r[1] for r in rows]
    xs = [r[2] for r in rows]
    # x grows with lambda and roughly linearly in it
    assert xs[2] > xs[1] > xs[0]
    assert xs[2] / xs[0] < 2 * lams[2] / lams[0]


@whole_run
def test_remark44_matches_plain_embedding_answers():
    """All three crossbar deployments agree: spike-timing SSSP,
    value-carrying SSSP, and the TTL k-hop network (with k large enough to
    reach everything)."""
    from repro.embedding import embedded_sssp
    from repro.embedding.ttl_crossbar import (
        compile_khop_ttl_on_crossbar,
        run_ttl_crossbar,
    )

    g = gnp_graph(4, 0.6, max_length=3, seed=7, ensure_source_reaches=True)
    timing = embedded_sssp(g, 0)
    values = run_poly_crossbar(compile_poly_sssp_on_crossbar(g, 0))
    ttl = run_ttl_crossbar(compile_khop_ttl_on_crossbar(g, 0, g.n - 1))
    print_header("Remark 4.4: three deployments of Section 3/4 on one crossbar")
    print_rows(
        ["deployment", "neurons", "spikes", "distances"],
        [
            ("timing (1 wire/vertex)", timing.cost.neuron_count,
             timing.cost.spike_count, str(timing.dist.tolist())),
            ("values (lambda+1 wires)", values.cost.neuron_count,
             values.cost.spike_count, str(values.dist.tolist())),
            ("TTL k-hop (k=n-1)", ttl.cost.neuron_count,
             ttl.cost.spike_count, str(ttl.dist.tolist())),
        ],
    )
    assert np.array_equal(timing.dist, values.dist)
    assert np.array_equal(timing.dist, ttl.dist)
    assert values.cost.neuron_count > timing.cost.neuron_count
