"""Figure 1: the delay-simulation gadget (A) and neuron memory latch (B).

Verifies and times the two primitives on the LIF engine: the gadget
realizes any delay d with 2 neurons (for architectures without native
programmable delays), and the latch stores/recalls a bit indefinitely.
"""

import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.circuits import build_delay_gadget, build_latch
from repro.core import Network, simulate


def test_fig1a_delay_gadget_sweep(benchmark):
    print_header("Figure 1A: simulated synaptic delay with two neurons")
    rows = []
    for d in (2, 8, 32, 128):
        net = Network()
        g = build_delay_gadget(net, d)
        r = simulate(net, [g.entry], engine="dense", max_steps=3 * d + 5)
        rows.append((d, int(r.first_spike[g.exit]), net.n_neurons, r.total_spikes))
        assert r.first_spike[g.exit] == d
    print_rows(["programmed d", "exit spike tick", "neurons", "total spikes"], rows)

    net = Network()
    g = build_delay_gadget(net, 64)
    benchmark(
        lambda: simulate(net, [g.entry], engine="dense", max_steps=200)
    )


@whole_run
def test_fig1a_spike_cost_linear_in_d():
    """The gadget trades spikes for delay: O(d) spikes per use."""
    spikes = {}
    for d in (10, 20, 40):
        net = Network()
        g = build_delay_gadget(net, d)
        r = simulate(net, [g.entry], engine="dense", max_steps=3 * d + 5)
        spikes[d] = r.total_spikes
    # exactly d+2 spikes per use: the generator fires d+1 times, the counter once
    assert spikes == {10: 12, 20: 22, 40: 42}


def test_fig1b_latch_store_and_recall(benchmark):
    print_header("Figure 1B: neuron memory latch")
    rows = []
    for recall_at in (5, 50, 500):
        net = Network()
        latch = build_latch(net)
        r = simulate(
            net,
            {0: [latch.set_input], recall_at: [latch.recall]},
            engine="dense",
            max_steps=recall_at + 5,
            stop_when_quiescent=False,
        )
        rows.append((recall_at, int(r.first_spike[latch.output]), r.total_spikes))
        assert r.first_spike[latch.output] == recall_at + 1
    print_rows(["recall tick", "output tick", "total spikes"], rows)

    net = Network()
    latch = build_latch(net)
    benchmark(
        lambda: simulate(
            net,
            {0: [latch.set_input], 100: [latch.recall]},
            engine="dense",
            max_steps=105,
            stop_when_quiescent=False,
        )
    )


@whole_run
def test_fig1b_latch_energy_cost():
    """The latch's price: its self-loop spikes every tick while holding the
    bit — the static power of neuromorphic memory."""
    net = Network()
    latch = build_latch(net)
    horizon = 200
    r = simulate(net, [latch.set_input], engine="dense", max_steps=horizon,
                 stop_when_quiescent=False)
    assert r.spike_counts[latch.memory] == horizon
