"""Ablation: circuit-style choice inside the gate-level compilers.

The Section 4 compilers can instantiate their per-vertex min/max circuits
in either Table-2 design.  Wired-OR keeps neuron counts near
O(m log k) (the paper's default, "neuron-saving type"); brute force
buys constant node depth — shorter rounds / smaller edge scale — at
O(indeg^2) neurons per vertex.  Both must compute identical distances.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.algorithms import (
    compile_khop_poly_gate_level,
    compile_khop_pseudo_gate_level,
)
from repro.algorithms.khop_poly import run_khop_poly_gate_level
from repro.algorithms.khop_pseudo import run_khop_gate_level
from repro.workloads import gnp_graph


def test_ablation_ttl_compiler_styles(benchmark):
    g = gnp_graph(6, 0.5, max_length=3, seed=77, ensure_source_reaches=True)
    k = 3
    compiled = {
        style: compile_khop_pseudo_gate_level(g, 0, k, style=style)
        for style in ("wired", "brute")
    }
    results = {style: run_khop_gate_level(c) for style, c in compiled.items()}
    assert np.array_equal(results["wired"].dist, results["brute"].dist)

    print_header("Ablation: Section 4.1 compiler, wired-OR vs brute-force max")
    print_rows(
        ["style", "neurons", "synapses", "edge scale", "spikes"],
        [
            (
                s,
                compiled[s].net.n_neurons,
                compiled[s].net.n_synapses,
                compiled[s].scale,
                results[s].cost.spike_count,
            )
            for s in ("wired", "brute")
        ],
    )
    # brute force shortens the node circuit (edge scale) at a neuron cost
    assert compiled["brute"].scale < compiled["wired"].scale

    benchmark(lambda: run_khop_gate_level(compiled["wired"]))


@whole_run
def test_ablation_poly_compiler_styles():
    g = gnp_graph(5, 0.5, max_length=3, seed=88, ensure_source_reaches=True)
    k = 2
    rows = []
    dists = {}
    for style in ("wired", "brute"):
        compiled = compile_khop_poly_gate_level(g, 0, k, style=style)
        r = run_khop_poly_gate_level(compiled)
        dists[style] = r.dist
        rows.append((style, compiled.net.n_neurons, compiled.x, r.cost.spike_count))
    print_header("Ablation: Section 4.2 compiler, min-circuit style")
    print_rows(["style", "neurons", "round length x", "spikes"], rows)
    assert np.array_equal(dists["wired"], dists["brute"])
    # brute force shortens the round
    assert rows[1][2] < rows[0][2]


@whole_run
def test_ablation_style_scaling_with_degree():
    """The tradeoff direction: raising density must grow the brute-force
    compiler's neuron count faster than wired-OR's."""
    k = 2
    ratios = []
    for p in (0.3, 0.9):
        g = gnp_graph(7, p, max_length=2, seed=int(10 * p), ensure_source_reaches=True)
        wired = compile_khop_pseudo_gate_level(g, 0, k, style="wired")
        brute = compile_khop_pseudo_gate_level(g, 0, k, style="brute")
        ratios.append(brute.net.n_neurons / wired.net.n_neurons)
    print_header("Ablation: brute/wired neuron ratio vs density")
    print_rows(["density", "ratio"], list(zip((0.3, 0.9), ratios)))
    assert ratios[1] > ratios[0]
