"""Ablation: algorithm robustness under hardware faults.

Injects dead neurons and synapse dropout into the Section-3 SSSP network
and measures coverage (vertices still reached) and correctness (reached
distances never shorten — timing information degrades monotonically).
Also verifies the delay-encoded design's weight-noise immunity: answers
live in spike *timing*, so small weight jitter changes nothing.

The final bench swaps the *static* dropout (synapses removed before the
run) for the *runtime* :class:`~repro.core.transient.SpikeDrop` model:
deliveries are lost per emission instead of synapses being cut up front.
On a one-shot SSSP network each synapse carries at most one delivery, so
the two fault styles should degrade coverage near-identically at equal
``p`` — which the bench's side-by-side sweep confirms.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.core import Network, SpikeDrop, simulate
from repro.core.faults import with_dead_neurons, with_synapse_dropout, with_weight_noise
from repro.workloads import gnp_graph


def sssp_network(graph):
    net = Network()
    ids = [net.add_neuron(one_shot=True) for _ in range(graph.n)]
    for u, v, w in graph.edges():
        if u != v:
            net.add_synapse(ids[u], ids[v], delay=int(w))
    return net, ids


@whole_run
def test_ablation_dropout_coverage_curve():
    g = gnp_graph(40, 0.15, max_length=5, seed=61, ensure_source_reaches=True)
    net, ids = sssp_network(g)
    base = simulate(net, [ids[0]], engine="event", max_steps=1000)
    base_reached = int((base.first_spike >= 0).sum())
    print_header("Ablation: SSSP coverage under synapse dropout")
    rows = []
    coverages = []
    for p in (0.0, 0.1, 0.3, 0.6, 0.9):
        reached_counts = []
        for seed in range(5):
            faulty = with_synapse_dropout(net, p, seed=seed)
            r = simulate(faulty, [ids[0]], engine="event", max_steps=1000)
            reached_counts.append(int((r.first_spike >= 0).sum()))
            # degraded distances never undercut the fault-free ones
            for v in range(g.n):
                if r.first_spike[ids[v]] >= 0:
                    assert r.first_spike[ids[v]] >= base.first_spike[ids[v]]
        mean = float(np.mean(reached_counts))
        coverages.append(mean)
        rows.append((p, round(mean, 1), base_reached))
    print_rows(["dropout p", "mean reached", "fault-free"], rows)
    assert coverages[0] == base_reached
    assert coverages[-1] < coverages[0]


@whole_run
def test_ablation_dead_neuron_impact():
    g = gnp_graph(30, 0.2, max_length=4, seed=62, ensure_source_reaches=True)
    net, ids = sssp_network(g)
    base = simulate(net, [ids[0]], engine="event", max_steps=1000)
    print_header("Ablation: impact of killing each of 5 random vertices")
    rng = np.random.default_rng(0)
    rows = []
    for dead in rng.choice(np.arange(1, g.n), size=5, replace=False).tolist():
        faulty = with_dead_neurons(net, [ids[dead]])
        r = simulate(faulty, [ids[0]], engine="event", max_steps=1000)
        lost = int((base.first_spike >= 0).sum() - (r.first_spike >= 0).sum())
        rows.append((dead, lost))
        assert r.first_spike[ids[dead]] == -1
        assert lost >= 1  # at least the dead vertex itself
    print_rows(["dead vertex", "vertices lost"], rows)


@whole_run
def test_ablation_transient_spike_drop_curve():
    """Runtime spike-drop sweep next to the equivalent static dropout."""
    g = gnp_graph(40, 0.15, max_length=5, seed=61, ensure_source_reaches=True)
    net, ids = sssp_network(g)
    base = simulate(net, [ids[0]], engine="event", max_steps=1000)
    base_reached = int((base.first_spike >= 0).sum())
    print_header("Ablation: SSSP coverage under runtime spike drop (transient)")
    rows = []
    coverages = []
    for p in (0.0, 0.1, 0.3, 0.6, 0.9):
        transient_counts = []
        static_counts = []
        for seed in range(5):
            r = simulate(
                net,
                [ids[0]],
                engine="event",
                max_steps=1000,
                faults=SpikeDrop(p, seed=seed),
            )
            transient_counts.append(int((r.first_spike >= 0).sum()))
            # a lost delivery can only lengthen paths, never shorten them
            for v in range(g.n):
                if r.first_spike[ids[v]] >= 0:
                    assert r.first_spike[ids[v]] >= base.first_spike[ids[v]]
            rs = simulate(
                with_synapse_dropout(net, p, seed=seed),
                [ids[0]],
                engine="event",
                max_steps=1000,
            )
            static_counts.append(int((rs.first_spike >= 0).sum()))
        mean = float(np.mean(transient_counts))
        coverages.append(mean)
        rows.append((p, round(mean, 1), round(float(np.mean(static_counts)), 1), base_reached))
    print_rows(["drop p", "mean reached (runtime)", "mean reached (static)", "fault-free"], rows)
    assert coverages[0] == base_reached
    assert coverages[-1] < coverages[0]


@whole_run
def test_ablation_weight_noise_immunity():
    """Delay coding: +-5% weight jitter leaves every answer bit-identical."""
    g = gnp_graph(30, 0.2, max_length=4, seed=63, ensure_source_reaches=True)
    net, ids = sssp_network(g)
    base = simulate(net, [ids[0]], engine="event", max_steps=1000)
    rows = []
    for sigma in (0.01, 0.05):
        identical = 0
        for seed in range(5):
            noisy = with_weight_noise(net, sigma, seed=seed)
            r = simulate(noisy, [ids[0]], engine="event", max_steps=1000)
            identical += int(np.array_equal(r.first_spike, base.first_spike))
        rows.append((sigma, f"{identical}/5"))
        assert identical == 5
    print_header("Ablation: weight-noise immunity of delay-encoded SSSP")
    print_rows(["sigma", "runs bit-identical"], rows)
