"""Degradation curves and TMR protection under transient faults.

Two experiments around the runtime fault subsystem:

* the :func:`~repro.analysis.degradation.degradation_sweep` table — success
  probability and coverage over fault rate for the three algorithm
  families — asserting quality is perfect at rate 0 and falls as the rate
  grows;
* the TMR protection curve — at each drop probability, the success rate of
  an unprotected wired-OR max circuit under *global* delivery drops next to
  a triple-replicated one whose faults are confined to a single replica.
  The replica-confined column stays at 1.0 (majority masking is exact),
  while the unprotected circuit decays — the constant-overhead robustness
  argument made quantitative.
"""

import pytest

from benchmarks.conftest import print_header, print_rows, whole_run
from repro.analysis.degradation import degradation_sweep
from repro.circuits import CircuitBuilder, run_circuit, tmr
from repro.circuits.max_circuits import wired_or_max
from repro.core import SpikeDrop
from repro.workloads import gnp_graph


@whole_run
def test_degradation_sweep_table():
    g = gnp_graph(24, 0.2, max_length=5, seed=17, ensure_source_reaches=True)
    rates = (0.0, 0.02, 0.05, 0.1, 0.2)
    cells = degradation_sweep(g, rates=rates, trials=10, seed=1)
    print_header("Degradation: success probability / coverage vs fault rate")
    print_rows(
        ["algorithm", "rate", "P(success)", "coverage"],
        [(c.algorithm, c.rate, c.success_probability, c.coverage) for c in cells],
    )
    for c in cells:
        if c.rate == 0.0:
            assert c.success_probability == 1.0 and c.coverage == 1.0
    # at the highest rate no family keeps perfect success
    worst = [c for c in cells if c.rate == rates[-1]]
    assert all(c.success_probability < 1.0 for c in worst)


def _build_max(b: CircuitBuilder) -> None:
    xs = [b.input_bits(f"x{i}", 4) for i in range(3)]
    res = wired_or_max(b, xs)
    b.output_bits("max", res.out_bits)


@whole_run
def test_tmr_protection_curve():
    plain = CircuitBuilder()
    _build_max(plain)
    wrapped = tmr(_build_max)
    inputs = {"x0": 5, "x1": 12, "x2": 7}
    trials = 20
    print_header("TMR: unprotected (global drops) vs 3-replica (one replica faulted)")
    rows = []
    for p in (0.05, 0.1, 0.2, 0.4):
        plain_ok = sum(
            run_circuit(plain, inputs, faults=SpikeDrop(p, seed=s))["max"] == 12
            for s in range(trials)
        )
        tmr_ok = sum(
            run_circuit(
                wrapped.builder,
                inputs,
                faults=SpikeDrop(p, seed=s, sources=wrapped.replicas[0]),
            )["max"]
            == 12
            for s in range(trials)
        )
        rows.append((p, plain_ok / trials, tmr_ok / trials))
    print_rows(["drop p", "unprotected P(success)", "TMR P(success)"], rows)
    # faults confined to one replica are masked exactly at every rate
    assert all(t == 1.0 for _, _, t in rows)
    # the unprotected circuit measurably fails well before the highest rate
    assert min(pl for _, pl, _ in rows) < 0.5
